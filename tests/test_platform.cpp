// Timing-level tests of the multi-core platform: fetch broadcast and
// serialization, DM arbitration and broadcast, the enhanced D-Xbar policy,
// check-in/check-out timing, sleep/wake, traps, deadlock detection, and
// counter bookkeeping.

#include <gtest/gtest.h>

#include <numeric>

#include "asm/assembler.h"
#include "core/lockstep.h"
#include "sim/platform.h"

namespace ulpsync::sim {
namespace {

assembler::Program compile(std::string_view source) {
  auto result = assembler::assemble(source);
  EXPECT_TRUE(result.ok()) << result.error_text();
  return std::move(result.program);
}

PlatformConfig bare_config(bool with_sync = true) {
  auto config = with_sync ? PlatformConfig::with_synchronizer()
                          : PlatformConfig::without_synchronizer();
  config.start_stagger_cycles = 0;  // deterministic common start
  return config;
}

TEST(PlatformTiming, SingleCoreRunsAtBaseCpi) {
  auto config = bare_config();
  config.num_cores = 1;
  Platform platform(config);
  platform.load_program(compile(R"(
      movi r1, 1
      movi r2, 2
      movi r3, 3
      movi r4, 4
      halt
  )"));
  const auto result = platform.run(100);
  EXPECT_TRUE(result.ok());
  // 4 movi at CPI 2 plus the halt fetch.
  EXPECT_EQ(platform.counters().retired_ops, 5u);
  EXPECT_NEAR(static_cast<double>(result.cycles), 9.0, 1.0);
}

TEST(PlatformTiming, LockstepFetchesBroadcastAsOneAccess) {
  Platform platform(bare_config());
  platform.load_program(compile(R"(
      movi r1, 1
      movi r2, 2
      movi r3, 3
      halt
  )"));
  const auto result = platform.run(100);
  EXPECT_TRUE(result.ok());
  const auto& counters = platform.counters();
  // 8 cores in lockstep: every fetch group is one bank access.
  EXPECT_EQ(counters.im_fetches_delivered, 8u * 4);
  EXPECT_EQ(counters.im_bank_accesses, 4u);
  EXPECT_EQ(counters.im_broadcast_groups, 4u);
  EXPECT_GT(counters.lockstep_cycles, 0u);
}

TEST(PlatformTiming, StaggeredStartPreventsInitialLockstep) {
  auto config = bare_config(false);
  config.start_stagger_cycles = 3;
  Platform platform(config);
  platform.load_program(compile(R"(
      movi r1, 1
      movi r2, 2
      halt
  )"));
  const auto result = platform.run(200);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(platform.counters().im_broadcast_groups, 0u)
      << "staggered baseline cores never coincide in this straight-line code";
  EXPECT_EQ(platform.counters().im_fetches_delivered, 8u * 3);
}

TEST(PlatformTiming, DivergedFetchesSerializeOnOneBank) {
  // All cores branch on their own id: core 0 takes the branch, the others
  // fall through -- groups must serialize (all code is in IM bank 0).
  auto config = bare_config(false);
  Platform platform(config);
  platform.load_program(compile(R"(
      csrr r1, #0
      cmpi r1, 0
      beq  zero_path
      movi r2, 1
      movi r3, 1
      halt
  zero_path:
      movi r2, 2
      movi r3, 2
      halt
  )"));
  const auto result = platform.run(300);
  EXPECT_TRUE(result.ok());
  EXPECT_GT(platform.counters().fetch_conflict_cycles, 0u);
  EXPECT_GT(platform.counters().core_fetch_stall_cycles, 0u);
  EXPECT_EQ(platform.core_reg(0, 2), 2);
  EXPECT_EQ(platform.core_reg(1, 2), 1);
}

TEST(PlatformTiming, SameAddressLoadsBroadcastOnDm) {
  Platform platform(bare_config());
  platform.dm_write(100, 0x1234);
  platform.load_program(compile(R"(
      ld r1, [r0+100]
      halt
  )"));
  const auto result = platform.run(100);
  EXPECT_TRUE(result.ok());
  for (unsigned c = 0; c < 8; ++c) EXPECT_EQ(platform.core_reg(c, 1), 0x1234);
  EXPECT_EQ(platform.counters().dm_bank_accesses, 1u);
  EXPECT_EQ(platform.counters().dm_broadcast_reads, 1u);
  EXPECT_EQ(platform.counters().dm_requests_granted, 8u);
}

TEST(PlatformTiming, DifferentAddressSameBankSerializes) {
  // Each core stores to result slot id (addresses 0x800+id, one bank).
  Platform platform(bare_config());
  platform.load_program(compile(R"(
      csrr r1, #0
      movi r2, 0x800
      stx  r1, [r2+r1]
      halt
  )"));
  const auto result = platform.run(200);
  EXPECT_TRUE(result.ok());
  for (unsigned c = 0; c < 8; ++c) EXPECT_EQ(platform.dm_read(0x800 + c), c);
  EXPECT_GE(platform.counters().dm_bank_accesses, 8u);
  EXPECT_GT(platform.counters().dm_conflict_cycles, 0u);
}

TEST(PlatformPolicy, DxbarPolicyKeepsConflictingCoresInLockstep) {
  // With the enhanced policy, the eight same-PC stores above must finish
  // together: afterwards all cores fetch the next instruction in the same
  // cycle (observable as a broadcast on the instruction after the store).
  for (const bool policy : {false, true}) {
    auto config = bare_config();
    config.features.dxbar_pc_policy = policy;
    Platform platform(config);
    platform.load_program(compile(R"(
        csrr r1, #0
        movi r2, 0x800
        stx  r1, [r2+r1]
        movi r3, 7
        movi r4, 9
        halt
    )"));
    const auto result = platform.run(300);
    EXPECT_TRUE(result.ok());
    const auto& counters = platform.counters();
    if (policy) {
      EXPECT_GT(counters.policy_hold_events, 0u);
      // The three instructions after the store broadcast as full groups.
      EXPECT_GE(counters.im_broadcast_groups, 5u);
      // All cores retire the store in the same cycle -> no core ran ahead:
      // every fetch after the conflict is a broadcast, so unicast fetches
      // only stem from the code before the store.
      EXPECT_EQ(counters.im_bank_accesses,
                counters.im_broadcast_groups +
                    (counters.im_fetches_delivered -
                     8 * counters.im_broadcast_groups));
    } else {
      EXPECT_EQ(counters.policy_hold_events, 0u);
    }
  }
}

TEST(PlatformSync, CheckInCheckOutTakesTwoCyclesWhenMerged) {
  Platform platform(bare_config());
  platform.load_program(compile(R"(
      sinc #0
      sdec #0
      halt
  )"));
  const auto result = platform.run(100);
  EXPECT_TRUE(result.ok());
  const auto& stats = platform.sync_stats();
  EXPECT_EQ(stats.checkins, 8u);
  EXPECT_EQ(stats.checkouts, 8u);
  EXPECT_EQ(stats.rmw_ops, 2u) << "one merged RMW per phase";
  EXPECT_EQ(stats.dm_accesses, 4u);
  EXPECT_EQ(stats.wakeup_events, 1u);
  EXPECT_EQ(stats.wakeups_delivered, 8u);
  EXPECT_EQ(platform.dm_read(0), 0) << "checkpoint word cleared after wake";
}

TEST(PlatformSync, RegionResynchronizesDivergedCores) {
  // Cores diverge on a data-dependent branch, then re-align at the
  // check-out; the code after the region must broadcast as one group.
  auto config = bare_config();
  Platform platform(config);
  platform.load_program(compile(R"(
      csrr r1, #0
      sinc #0
      cmpi r1, 4
      blt  low
      movi r2, 10
      movi r3, 11
      bra  join
  low:
      movi r2, 20
  join:
      sdec #0
      movi r4, 1
      movi r5, 2
      movi r6, 3
      halt
  )"));
  core::LockstepAnalyzer analyzer;
  analyzer.attach(platform);
  const auto result = platform.run(300);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(platform.core_reg(0, 2), 20);
  EXPECT_EQ(platform.core_reg(7, 2), 10);
  // After the wake-up, the tail (movi r4/r5/r6, halt) is fetched in
  // lockstep: at least those 4 broadcast groups must appear.
  EXPECT_GE(platform.counters().im_broadcast_groups, 4u);
  EXPECT_EQ(platform.sync_stats().wakeup_events, 1u);
}

TEST(PlatformSync, SincWithoutHardwareTraps) {
  Platform platform(bare_config(false));
  platform.load_program(compile("sinc #0\nhalt\n"));
  const auto result = platform.run(100);
  EXPECT_EQ(result.status, RunResult::Status::kTrap);
  EXPECT_EQ(result.trap, TrapKind::kSyncWithoutHardware);
}

TEST(PlatformSync, UnbalancedCheckoutDeadlocks) {
  // SDEC without matching check-ins by the others: the core sleeps forever.
  auto config = bare_config();
  config.num_cores = 2;
  Platform platform(config);
  platform.load_program(compile(R"(
      csrr r1, #0
      cmpi r1, 0
      bne  other
      sinc #0
      sinc #1
      sdec #1
      halt
  other:
      sinc #1
      sdec #0
      halt
  )"));
  const auto result = platform.run(10'000);
  EXPECT_EQ(result.status, RunResult::Status::kAllAsleep);
}

TEST(PlatformTraps, DmOutOfRange) {
  Platform platform(bare_config());
  platform.load_program(compile(R"(
      movi r1, 0x8000
      ld   r2, [r1]
      halt
  )"));
  const auto result = platform.run(100);
  EXPECT_EQ(result.status, RunResult::Status::kTrap);
  EXPECT_EQ(result.trap, TrapKind::kDmOutOfRange);
}

TEST(PlatformTraps, RunawayPcTraps) {
  Platform platform(bare_config());
  platform.load_program(compile(R"(
      movi r1, 3000
      jr   r1
  )"));
  const auto result = platform.run(100);
  EXPECT_EQ(result.status, RunResult::Status::kTrap);
  EXPECT_EQ(result.trap, TrapKind::kImOutOfRange);
}

TEST(PlatformTraps, PlainSleepWithNoWakeDeadlocks) {
  Platform platform(bare_config());
  platform.load_program(compile("sleep\nhalt\n"));
  const auto result = platform.run(1000);
  EXPECT_EQ(result.status, RunResult::Status::kAllAsleep);
}

TEST(PlatformRun, MaxCyclesStopsTheRun) {
  Platform platform(bare_config());
  platform.load_program(compile("spin: bra spin\n"));
  const auto result = platform.run(50);
  EXPECT_EQ(result.status, RunResult::Status::kMaxCycles);
  EXPECT_EQ(result.cycles, 50u);
}

TEST(PlatformRun, ResetPreservesDmUnlessCleared) {
  Platform platform(bare_config());
  platform.load_program(compile("halt\n"));
  platform.dm_write(500, 0xAAAA);
  (void)platform.run(10);
  platform.reset();
  EXPECT_EQ(platform.dm_read(500), 0xAAAA);
  EXPECT_EQ(platform.counters().cycles, 0u);
  EXPECT_EQ(platform.core_pc(0), 0u);
  platform.reset(/*clear_dm=*/true);
  EXPECT_EQ(platform.dm_read(500), 0);
}

TEST(PlatformRun, BlockDmAccessors) {
  Platform platform(bare_config());
  const std::vector<std::uint16_t> data = {1, 2, 3, 4, 5};
  platform.dm_write_block(100, data);
  EXPECT_EQ(platform.dm_read_block(100, 5), data);
}

TEST(PlatformRun, ObserverSeesEveryCycle) {
  Platform platform(bare_config());
  platform.load_program(compile("movi r1, 1\nhalt\n"));
  std::uint64_t observed = 0;
  platform.set_observer([&](const Platform& p) {
    ++observed;
    EXPECT_EQ(p.counters().cycles, observed);
  });
  const auto result = platform.run(100);
  EXPECT_EQ(observed, result.cycles);
}

TEST(PlatformCounters, PerCoreRetiredSumsToTotal) {
  Platform platform(bare_config());
  platform.load_program(compile(R"(
      csrr r1, #0
      cmpi r1, 3
      blt  small
      movi r2, 1
      movi r2, 2
      halt
  small:
      movi r2, 3
      halt
  )"));
  EXPECT_TRUE(platform.run(1000).ok());
  const auto& counters = platform.counters();
  const std::uint64_t sum = std::accumulate(counters.per_core_retired.begin(),
                                            counters.per_core_retired.end(),
                                            std::uint64_t{0});
  EXPECT_EQ(sum, counters.retired_ops);
}

TEST(PlatformCounters, TakenBranchCostsExtraBubble) {
  auto config = bare_config();
  config.num_cores = 1;
  config.branch_taken_penalty = 2;
  Platform taken(config);
  taken.load_program(compile(R"(
      bra  skip
      nop
  skip:
      halt
  )"));
  const auto taken_result = taken.run(100);

  // Reference executes the same number of cycles minus the redirect
  // penalty: two retired instructions, no redirect.
  Platform fall(config);
  fall.load_program(compile("nop\nhalt\n"));
  const auto fall_result = fall.run(100);
  EXPECT_EQ(taken_result.cycles, fall_result.cycles + 2);
  EXPECT_EQ(taken.counters().core_branch_bubble_cycles,
            fall.counters().core_branch_bubble_cycles + 2);
}

TEST(PlatformCounters, HaltedPlatformReportsAllHalted) {
  Platform platform(bare_config());
  platform.load_program(compile("halt\n"));
  EXPECT_FALSE(platform.all_halted());
  EXPECT_TRUE(platform.run(100).ok());
  EXPECT_TRUE(platform.all_halted());
  for (unsigned c = 0; c < 8; ++c)
    EXPECT_EQ(platform.core_status(c), CoreStatus::kHalted);
}

TEST(PlatformInterrupt, WakesSleepingCoresAndResumesAfterSleep) {
  Platform platform(bare_config());
  platform.load_program(compile(R"(
      movi r1, 5
      sleep
      movi r2, 7
      halt
  )"));
  auto result = platform.run(1000);
  ASSERT_EQ(result.status, RunResult::Status::kAllAsleep);
  EXPECT_EQ(platform.core_reg(0, 2), 0) << "not yet past the sleep";

  platform.interrupt_all();
  result = platform.run(1000);
  EXPECT_TRUE(result.ok()) << result.to_string();
  for (unsigned c = 0; c < 8; ++c) EXPECT_EQ(platform.core_reg(c, 2), 7);
}

TEST(PlatformInterrupt, BroadcastWakeRestoresLockstep) {
  // Duty cycle: all cores sleep, one external event wakes them together —
  // the tail must broadcast.
  Platform platform(bare_config());
  platform.load_program(compile(R"(
      sleep
      movi r2, 1
      movi r3, 2
      movi r4, 3
      halt
  )"));
  ASSERT_EQ(platform.run(1000).status, RunResult::Status::kAllAsleep);
  const auto broadcasts_before = platform.counters().im_broadcast_groups;
  platform.interrupt_all();
  ASSERT_TRUE(platform.run(1000).ok());
  EXPECT_GE(platform.counters().im_broadcast_groups, broadcasts_before + 4);
}

TEST(PlatformInterrupt, SingleInterruptWakesOnlyThatCore) {
  Platform platform(bare_config());
  platform.load_program(compile(R"(
      sleep
      halt
  )"));
  ASSERT_EQ(platform.run(1000).status, RunResult::Status::kAllAsleep);
  platform.interrupt(3);
  ASSERT_EQ(platform.run(1000).status, RunResult::Status::kAllAsleep);
  EXPECT_EQ(platform.core_status(3), CoreStatus::kHalted);
  EXPECT_EQ(platform.core_status(0), CoreStatus::kSleeping);
}

TEST(PlatformInterrupt, InterruptOnRunningCoreIsNoOp) {
  Platform platform(bare_config());
  platform.load_program(compile("movi r1, 1\nhalt\n"));
  platform.interrupt(0);  // nothing sleeps yet
  EXPECT_TRUE(platform.run(100).ok());
}

TEST(PlatformConfigTest, FewerCoresRunIndependently) {
  for (unsigned cores : {1u, 2u, 4u}) {
    auto config = bare_config();
    config.num_cores = cores;
    Platform platform(config);
    platform.load_program(compile(R"(
        csrr r1, #1
        movi r2, 0x800
        st   [r2], r1
        halt
    )"));
    EXPECT_TRUE(platform.run(1000).ok());
    EXPECT_EQ(platform.dm_read(0x800), cores);
  }
}

TEST(PlatformConfigTest, BlockBankingSelectable) {
  auto config = bare_config(false);
  config.im_line_slots = 0;  // pure block mapping
  Platform platform(config);
  platform.load_program(compile("movi r1, 1\nhalt\n"));
  EXPECT_TRUE(platform.run(100).ok());
}

}  // namespace
}  // namespace ulpsync::sim
