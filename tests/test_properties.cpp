// Cross-cutting property suites:
//  * ALU semantics differentially tested against a plain-C++ int16 model
//    over random operand sweeps (parameterized per opcode);
//  * assembler robustness fuzzing (random token soup must produce
//    diagnostics, never crashes, and never a silently wrong program);
//  * platform event-counter conservation laws on random workloads;
//  * snapshot serialization properties: round-trip identity at arbitrary
//    capture cycles, rejection of corrupted/truncated images (never a
//    crash, never a silently wrong parse), determinism of warm-state
//    capture under host concurrency, and host RNG stream checkpointing;
//  * event-schedule (.evt) wire-format properties mirroring the snapshot
//    suite: round-trip identity, truncation rejection at every prefix,
//    corruption fuzz without crashes, and trailing-hash verification —
//    for both the raw sim::EventSchedule image and the scenario
//    RecordedRun envelope that wraps it.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "asm/assembler.h"
#include "scenario/engine.h"
#include "scenario/registry.h"
#include "scenario/replay.h"
#include "sim/event_schedule.h"
#include "sim/executor.h"
#include "sim/platform.h"
#include "sim/snapshot.h"
#include "util/rng.h"

namespace ulpsync {
namespace {

// --- ALU differential sweep -------------------------------------------------

using AluRef = std::uint16_t (*)(std::uint16_t, std::uint16_t);

struct AluCase {
  const char* name;
  isa::Opcode op;
  AluRef reference;
};

std::uint16_t ref_add(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::uint16_t>(a + b);
}
std::uint16_t ref_sub(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::uint16_t>(a - b);
}
std::uint16_t ref_and(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::uint16_t>(a & b);
}
std::uint16_t ref_or(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::uint16_t>(a | b);
}
std::uint16_t ref_xor(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::uint16_t>(a ^ b);
}
std::uint16_t ref_sll(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::uint16_t>(a << (b & 15));
}
std::uint16_t ref_srl(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::uint16_t>(a >> (b & 15));
}
std::uint16_t ref_sra(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::uint16_t>(static_cast<std::int16_t>(a) >> (b & 15));
}
std::uint16_t ref_mul(std::uint16_t a, std::uint16_t b) {
  const std::int32_t p = static_cast<std::int16_t>(a) * static_cast<std::int16_t>(b);
  return static_cast<std::uint16_t>(p & 0xFFFF);
}
std::uint16_t ref_mulh(std::uint16_t a, std::uint16_t b) {
  const std::int32_t p = static_cast<std::int16_t>(a) * static_cast<std::int16_t>(b);
  return static_cast<std::uint16_t>(static_cast<std::uint32_t>(p) >> 16);
}

class AluDifferential : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluDifferential, MatchesReferenceOverRandomOperands) {
  const AluCase& alu = GetParam();
  util::Rng rng(0xA11Bu ^ static_cast<std::uint64_t>(alu.op));
  for (int trial = 0; trial < 4000; ++trial) {
    const auto a = static_cast<std::uint16_t>(rng.next_below(0x10000));
    const auto b = static_cast<std::uint16_t>(rng.next_below(0x10000));
    sim::CoreArchState state;
    state.set_reg(1, a);
    state.set_reg(2, b);
    isa::Instruction instr{alu.op, 3, 1, 2, 0};
    (void)sim::execute(state, instr);
    EXPECT_EQ(state.reg(3), alu.reference(a, b))
        << alu.name << "(" << a << ", " << b << ")";
  }
}

TEST_P(AluDifferential, EdgeOperandMatrix) {
  const AluCase& alu = GetParam();
  constexpr std::uint16_t kEdges[] = {0, 1, 2, 0x7FFF, 0x8000, 0x8001,
                                      0xFFFE, 0xFFFF, 15, 16, 17};
  for (std::uint16_t a : kEdges) {
    for (std::uint16_t b : kEdges) {
      sim::CoreArchState state;
      state.set_reg(1, a);
      state.set_reg(2, b);
      isa::Instruction instr{alu.op, 3, 1, 2, 0};
      (void)sim::execute(state, instr);
      EXPECT_EQ(state.reg(3), alu.reference(a, b))
          << alu.name << "(" << a << ", " << b << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBinaryOps, AluDifferential,
    ::testing::Values(AluCase{"add", isa::Opcode::kAdd, ref_add},
                      AluCase{"sub", isa::Opcode::kSub, ref_sub},
                      AluCase{"and", isa::Opcode::kAnd, ref_and},
                      AluCase{"or", isa::Opcode::kOr, ref_or},
                      AluCase{"xor", isa::Opcode::kXor, ref_xor},
                      AluCase{"sll", isa::Opcode::kSll, ref_sll},
                      AluCase{"srl", isa::Opcode::kSrl, ref_srl},
                      AluCase{"sra", isa::Opcode::kSra, ref_sra},
                      AluCase{"mul", isa::Opcode::kMul, ref_mul},
                      AluCase{"mulh", isa::Opcode::kMulh, ref_mulh}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

// --- assembler fuzzing -------------------------------------------------------

TEST(AssemblerFuzz, RandomTokenSoupNeverCrashes) {
  util::Rng rng(0xF022);
  const char* fragments[] = {"add",   "r1",    "r16",  ",",   "[",    "]",
                             "#",     "0x",    "12",   "-",   "+",    ":",
                             "label", ".equ",  ".org", "ld",  "st",   "beq",
                             "movi",  "0b12",  "r",    "!!",  "65536"};
  for (int trial = 0; trial < 500; ++trial) {
    std::string source;
    const unsigned lines = 1 + static_cast<unsigned>(rng.next_below(8));
    for (unsigned l = 0; l < lines; ++l) {
      const unsigned tokens = static_cast<unsigned>(rng.next_below(7));
      for (unsigned t = 0; t < tokens; ++t) {
        source += fragments[rng.next_below(std::size(fragments))];
        source += rng.next_below(3) == 0 ? "" : " ";
      }
      source += '\n';
    }
    const auto result = assembler::assemble(source);
    // Either it assembles or it produces diagnostics — both are fine;
    // the property is "no crash, and ok() implies a consistent program".
    if (result.ok()) {
      EXPECT_EQ(result.program.code.size(), result.program.image.size());
    } else {
      EXPECT_FALSE(result.errors.empty());
    }
  }
}

TEST(AssemblerFuzz, RandomValidProgramsRoundTripThroughEncoding) {
  util::Rng rng(0x5EED);
  for (int trial = 0; trial < 200; ++trial) {
    std::string source;
    const unsigned count = 1 + static_cast<unsigned>(rng.next_below(30));
    for (unsigned i = 0; i < count; ++i) {
      switch (rng.next_below(5)) {
        case 0:
          source += "add r" + std::to_string(rng.next_below(16)) + ", r" +
                    std::to_string(rng.next_below(16)) + ", r" +
                    std::to_string(rng.next_below(16)) + "\n";
          break;
        case 1:
          source += "movi r" + std::to_string(rng.next_below(16)) + ", " +
                    std::to_string(rng.next_below(0x10000)) + "\n";
          break;
        case 2:
          source += "ld r" + std::to_string(rng.next_below(16)) + ", [r" +
                    std::to_string(rng.next_below(16)) + "+" +
                    std::to_string(rng.next_below(4096)) + "]\n";
          break;
        case 3:
          source += "cmpi r" + std::to_string(rng.next_below(16)) + ", " +
                    std::to_string(rng.next_in_range(-4096, 4095)) + "\n";
          break;
        default:
          source += "nop\n";
      }
    }
    source += "halt\n";
    const auto result = assembler::assemble(source);
    ASSERT_TRUE(result.ok()) << result.error_text() << source;
    for (std::size_t i = 0; i < result.program.code.size(); ++i) {
      EXPECT_EQ(*isa::decode(result.program.image[i]), result.program.code[i]);
    }
  }
}

// --- counter conservation laws ----------------------------------------------

TEST(CounterConservation, FetchesDeliveredEqualRetiredOps) {
  // Every delivered fetch retires exactly once (no speculation): on any
  // completed run, retired ops == delivered fetches.
  for (const bool with_sync : {false, true}) {
    auto config = with_sync ? sim::PlatformConfig::with_synchronizer()
                            : sim::PlatformConfig::without_synchronizer();
    sim::Platform platform(config);
    auto program = assembler::assemble(R"(
        csrr r1, #0
        movi r2, 30
    loop:
        andi r3, r2, 3
        cmp  r3, r1
        bne  skip
        addi r4, r4, 1
    skip:
        addi r2, r2, -1
        cmpi r2, 0
        bne  loop
        halt
    )");
    ASSERT_TRUE(program.ok());
    platform.load_program(program.program);
    ASSERT_TRUE(platform.run(100'000).ok());
    const auto& counters = platform.counters();
    EXPECT_EQ(counters.im_fetches_delivered, counters.retired_ops);
    // Broadcast accounting: delivered >= accesses, equality iff no merge.
    EXPECT_GE(counters.im_fetches_delivered, counters.im_bank_accesses);
    // Active cycles can never exceed cores x cycles.
    EXPECT_LE(counters.core_active_cycles,
              counters.cycles * platform.config().num_cores);
  }
}

TEST(CounterConservation, DmGrantsMatchExecutedMemOps) {
  sim::Platform platform(sim::PlatformConfig::with_synchronizer());
  auto program = assembler::assemble(R"(
      csrr r1, #0
      addi r4, r1, 2
      movi r5, 11
      sll  r3, r4, r5
      movi r2, 16
  loop:
      ldx  r6, [r3+r2]
      addi r6, r6, 1
      stx  r6, [r3+r2]
      addi r2, r2, -1
      cmpi r2, 0
      bne  loop
      halt
  )");
  ASSERT_TRUE(program.ok());
  platform.load_program(program.program);
  ASSERT_TRUE(platform.run(100'000).ok());
  // 16 iterations x (1 load + 1 store) x 8 cores.
  EXPECT_EQ(platform.counters().dm_requests_granted, 16u * 2 * 8);
}

// --- snapshot serialization properties --------------------------------------

constexpr std::string_view kSnapshotPropertyKernel = R"(
    csrr r1, #0
    addi r4, r1, 2
    movi r5, 11
    sll  r3, r4, r5
    movi r2, 25
loop:
    ldx  r6, [r3+r2]
    addi r6, r6, 3
    stx  r6, [r3+r2]
    sinc #0
    sdec #0
    addi r2, r2, -1
    cmpi r2, 0
    bne  loop
    halt
)";

sim::Snapshot capture_at(std::uint64_t cycle) {
  sim::Platform platform(sim::PlatformConfig::with_synchronizer());
  const auto program = assembler::assemble(std::string(kSnapshotPropertyKernel));
  EXPECT_TRUE(program.ok()) << program.error_text();
  platform.load_program(program.program);
  while (platform.counters().cycles < cycle) platform.tick();
  return platform.save_snapshot();
}

TEST(SnapshotProperties, SerializeDeserializeIsIdentityAtRandomCycles) {
  util::Rng rng(0x5AA9);
  for (int trial = 0; trial < 25; ++trial) {
    const std::uint64_t cycle = rng.next_below(1500);
    const sim::Snapshot snap = capture_at(cycle);
    const auto bytes = snap.serialize();
    const sim::Snapshot parsed = sim::Snapshot::deserialize(bytes);
    EXPECT_EQ(parsed, snap) << "cycle " << cycle;
    // Re-serialization is byte-stable (the format has one canonical image).
    EXPECT_EQ(parsed.serialize(), bytes) << "cycle " << cycle;
  }
}

TEST(SnapshotProperties, TruncatedImagesAreRejectedAtEveryLength) {
  const auto bytes = capture_at(500).serialize();
  util::Rng rng(0x7122);
  // Every proper prefix must be rejected; sample densely (the image is a
  // few kB, so testing all lengths stays fast too, but sampling plus the
  // short prefixes keeps the intent obvious).
  for (std::size_t length = 0; length < 64; ++length) {
    EXPECT_THROW((void)sim::Snapshot::deserialize(
                     std::span(bytes.data(), length)),
                 std::invalid_argument)
        << "prefix length " << length;
  }
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t length = rng.next_below(bytes.size());
    EXPECT_THROW((void)sim::Snapshot::deserialize(
                     std::span(bytes.data(), length)),
                 std::invalid_argument)
        << "prefix length " << length;
  }
}

TEST(SnapshotProperties, CorruptedMagicAndVersionAreRejected) {
  const auto bytes = capture_at(300).serialize();
  // Any corruption of the 8-byte magic or the 4-byte version tag rejects.
  for (std::size_t pos = 0; pos < 12; ++pos) {
    auto corrupted = bytes;
    corrupted[pos] ^= 0x40;
    EXPECT_THROW((void)sim::Snapshot::deserialize(corrupted),
                 std::invalid_argument)
        << "byte " << pos;
  }
}

TEST(SnapshotProperties, RandomBitFlipsNeverCrashTheParser) {
  const auto bytes = capture_at(700).serialize();
  util::Rng rng(0xB17F);
  for (int trial = 0; trial < 300; ++trial) {
    auto corrupted = bytes;
    corrupted[rng.next_below(corrupted.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    // A flip either parses (into a self-consistent snapshot whose
    // re-serialization round-trips) or throws — it must never crash or
    // read out of bounds.
    try {
      const sim::Snapshot parsed = sim::Snapshot::deserialize(corrupted);
      EXPECT_EQ(parsed.serialize(), corrupted);
    } catch (const std::invalid_argument&) {
      // Expected for most flips.
    }
  }
}

TEST(SnapshotProperties, WarmStateCaptureIsDeterministicAcrossThreads) {
  // The warm-start prepass may run while other sweep threads simulate;
  // captured warm states must not depend on host concurrency. Capture the
  // same spec from many threads at once and require identical bytes.
  scenario::RunSpec spec;
  spec.workload = "sqrt32";
  spec.params.samples = 32;
  const scenario::Engine engine(scenario::Registry::builtins(),
                                scenario::EngineOptions{});

  constexpr unsigned kThreads = 8;
  std::vector<std::vector<std::uint8_t>> captured(kThreads);
  {
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        const auto state = engine.capture_warm_state(spec, 800);
        if (state != nullptr) captured[t] = state->snapshot.serialize();
      });
    }
    for (auto& thread : pool) thread.join();
  }
  for (unsigned t = 0; t < kThreads; ++t) {
    ASSERT_FALSE(captured[t].empty()) << "thread " << t;
    EXPECT_EQ(captured[t], captured[0]) << "thread " << t;
  }
}

TEST(SnapshotProperties, HostRngStreamRoundTripsThroughHostWords) {
  // The harness-side RNG stream checkpoints alongside the platform: a
  // restored stream must continue exactly where the saved one left off.
  util::Rng original(0xFEED5EED);
  for (int i = 0; i < 100; ++i) (void)original.next_u64();

  sim::Snapshot snap = capture_at(100);
  const auto state = original.state();
  snap.host_words.assign(state.begin(), state.end());
  const sim::Snapshot parsed = sim::Snapshot::deserialize(snap.serialize());

  ASSERT_EQ(parsed.host_words.size(), 4u);
  util::Rng resumed;
  resumed.set_state({parsed.host_words[0], parsed.host_words[1],
                     parsed.host_words[2], parsed.host_words[3]});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(resumed.next_u64(), original.next_u64());
  }
}

// --- event-schedule serialization properties --------------------------------

// A synthetic schedule with at least one event of every kind plus the full
// outcome block — small, but it exercises every wire-format field.
sim::EventSchedule synthetic_schedule() {
  sim::EventSchedule schedule;
  schedule.im_fingerprint = 0x1234'5678'9ABC'DEF0ULL;
  sim::ExternalEvent deposit;
  deposit.kind = sim::EventKind::kDmWriteBlock;
  deposit.cycle = 0;
  deposit.addr = 0x40;
  deposit.words = {1, 2, 3, 0xFFFF, 0x8000};
  schedule.events.push_back(deposit);
  sim::ExternalEvent word;
  word.kind = sim::EventKind::kDmWrite;
  word.cycle = 120;
  word.addr = 0x7F0;
  word.word = 0xBEEF;
  schedule.events.push_back(word);
  sim::ExternalEvent wake;
  wake.kind = sim::EventKind::kInterrupt;
  wake.cycle = 350;
  wake.core = 5;
  schedule.events.push_back(wake);
  sim::ExternalEvent broadcast;
  broadcast.kind = sim::EventKind::kInterruptAll;
  broadcast.cycle = 350;
  schedule.events.push_back(broadcast);
  schedule.final_result.status = sim::RunResult::Status::kAllAsleep;
  schedule.final_result.cycles = 4096;
  schedule.final_state_hash = 0xFEED'FACE'CAFE'F00DULL;
  schedule.final_host_words = {7, 0, 0xFFFF'FFFF'FFFF'FFFFULL};
  return schedule;
}

// A real recorded run for envelope-level properties (sleepgen is the
// cheapest wake-heavy builtin).
const scenario::RecordedRun& recorded_sleepgen() {
  static const scenario::RecordedRun run = [] {
    scenario::RunSpec spec;
    spec.workload = "sleepgen";
    spec.params.samples = 8;
    spec.max_cycles = 3'000'000;
    return scenario::record_one(spec, scenario::Registry::builtins()).recorded;
  }();
  return run;
}

TEST(EventScheduleProperties, SerializeDeserializeIsIdentity) {
  for (const sim::EventSchedule& schedule :
       {synthetic_schedule(), recorded_sleepgen().schedule}) {
    const auto bytes = schedule.serialize();
    const sim::EventSchedule parsed = sim::EventSchedule::deserialize(bytes);
    EXPECT_EQ(parsed, schedule);
    // Re-serialization is byte-stable (one canonical image per schedule).
    EXPECT_EQ(parsed.serialize(), bytes);
    EXPECT_EQ(parsed.content_hash(), schedule.content_hash());
  }
}

TEST(EventScheduleProperties, TruncatedImagesAreRejectedAtEveryLength) {
  const auto bytes = synthetic_schedule().serialize();
  // The synthetic image is small enough to test every proper prefix.
  for (std::size_t length = 0; length < bytes.size(); ++length) {
    EXPECT_THROW((void)sim::EventSchedule::deserialize(
                     std::span(bytes.data(), length)),
                 std::invalid_argument)
        << "prefix length " << length;
  }
}

TEST(EventScheduleProperties, CorruptedMagicAndVersionAreRejected) {
  const auto bytes = synthetic_schedule().serialize();
  // Any corruption of the 8-byte magic or the 4-byte version tag rejects.
  for (std::size_t pos = 0; pos < 12; ++pos) {
    auto corrupted = bytes;
    corrupted[pos] ^= 0x40;
    EXPECT_THROW((void)sim::EventSchedule::deserialize(corrupted),
                 std::invalid_argument)
        << "byte " << pos;
  }
}

TEST(EventScheduleProperties, RandomBitFlipsNeverCrashTheParser) {
  const auto bytes = recorded_sleepgen().schedule.serialize();
  util::Rng rng(0xE117);
  for (int trial = 0; trial < 400; ++trial) {
    auto corrupted = bytes;
    corrupted[rng.next_below(corrupted.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    // A flip either parses (into a schedule whose re-serialization
    // round-trips) or throws — never a crash or out-of-bounds read.
    try {
      const sim::EventSchedule parsed =
          sim::EventSchedule::deserialize(corrupted);
      EXPECT_EQ(parsed.serialize(), corrupted);
    } catch (const std::invalid_argument&) {
      // Expected for most flips.
    }
  }
}

TEST(EventScheduleProperties, PayloadFlipsFailTheTrailingHash) {
  const auto bytes = synthetic_schedule().serialize();
  // Flipping any single payload byte (past the magic/version header,
  // before the 8-byte trailing hash) must be caught — if not by a field
  // plausibility check, then by the hash itself.
  for (std::size_t pos = 12; pos + 8 < bytes.size(); ++pos) {
    auto corrupted = bytes;
    corrupted[pos] ^= 0x01;
    EXPECT_THROW((void)sim::EventSchedule::deserialize(corrupted),
                 std::invalid_argument)
        << "payload byte " << pos;
  }
  // And so must flipping the hash bytes themselves.
  for (std::size_t pos = bytes.size() - 8; pos < bytes.size(); ++pos) {
    auto corrupted = bytes;
    corrupted[pos] ^= 0x01;
    EXPECT_THROW((void)sim::EventSchedule::deserialize(corrupted),
                 std::invalid_argument)
        << "hash byte " << pos;
  }
}

TEST(RecordedRunProperties, EnvelopeRoundTripsAndRejectsCorruption) {
  const scenario::RecordedRun& run = recorded_sleepgen();
  const auto bytes = run.serialize();
  const scenario::RecordedRun parsed = scenario::RecordedRun::deserialize(bytes);
  EXPECT_EQ(parsed.spec.workload, run.spec.workload);
  EXPECT_EQ(parsed.csv_row, run.csv_row);
  EXPECT_EQ(parsed.schedule, run.schedule);
  EXPECT_EQ(parsed.serialize(), bytes);

  util::Rng rng(0x0E77);
  for (std::size_t length = 0; length < 32; ++length) {
    EXPECT_THROW((void)scenario::RecordedRun::deserialize(
                     std::span(bytes.data(), length)),
                 std::invalid_argument)
        << "prefix length " << length;
  }
  for (int trial = 0; trial < 300; ++trial) {
    auto corrupted = bytes;
    corrupted[rng.next_below(corrupted.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    try {
      const scenario::RecordedRun reparsed =
          scenario::RecordedRun::deserialize(corrupted);
      EXPECT_EQ(reparsed.serialize(), corrupted);
    } catch (const std::invalid_argument&) {
      // Expected: the trailing hash catches nearly every flip.
    }
  }
}

// --- energy-report serialization properties ---------------------------------

TEST(EnergyRecordProperties, EnergyColumnsRoundTripThroughCsvAndJson) {
  // Randomized operating points (plus the no-request control): the energy
  // columns must survive CSV parse → re-emit and JSON parse → re-emit
  // byte-for-byte, and the parsed report must equal the original exactly
  // (format_double is shortest-round-trip, so equality is exact).
  util::Rng rng(0xE9E9);
  std::vector<scenario::RunSpec> specs;
  {
    scenario::RunSpec control;  // no energy request: columns stay empty
    control.workload = "mrpfltr";
    control.params.samples = 24;
    specs.push_back(std::move(control));
  }
  for (int trial = 0; trial < 6; ++trial) {
    scenario::RunSpec spec;
    spec.workload = "mrpfltr";
    spec.params.samples = 24;
    scenario::EnergyRequest request;
    request.params = static_cast<scenario::EnergyRequest::Params>(
        rng.next_below(3));
    // Mix feasible clocks, the nominal-default 0, and infeasible ones.
    request.f_mhz = trial == 0 ? 0.0 : 90.0 * double(rng.next_below(1000)) / 1000.0;
    request.voltage = (trial % 2) ? 0.0 : 0.6 + double(rng.next_below(600)) / 1000.0;
    spec.energy = request;
    specs.push_back(std::move(spec));
  }

  const scenario::Engine engine(scenario::Registry::builtins());
  for (const scenario::RunRecord& record : engine.run(specs)) {
    const std::string row = scenario::to_csv_row(record);
    const std::string csv = scenario::csv_header() + "\n" + row + "\n";
    const auto from_csv = scenario::records_from_csv(csv);
    ASSERT_EQ(from_csv.size(), 1u);
    EXPECT_EQ(scenario::to_csv_row(from_csv[0]), row);

    const auto from_json = scenario::record_from_json(scenario::to_json(record));
    EXPECT_EQ(scenario::to_csv_row(from_json), row);

    // Exact field equality of the parsed report (not just bytes).
    const auto& original = record.energy_report;
    for (const auto* parsed :
         {&from_csv[0].energy_report, &from_json.energy_report}) {
      EXPECT_EQ(parsed->feasible, original.feasible);
      EXPECT_EQ(parsed->f_mhz, original.f_mhz);
      EXPECT_EQ(parsed->voltage, original.voltage);
      EXPECT_EQ(parsed->mops, original.mops);
      EXPECT_EQ(parsed->energy_per_op_pj, original.energy_per_op_pj);
      EXPECT_EQ(parsed->total_energy_uj, original.total_energy_uj);
      EXPECT_EQ(parsed->breakdown.total_mw(), original.breakdown.total_mw());
    }
    // The request itself round-trips (or stays absent).
    EXPECT_EQ(from_csv[0].spec.energy.has_value(), record.spec.energy.has_value());
    if (record.spec.energy) {
      EXPECT_EQ(from_csv[0].spec.energy->params, record.spec.energy->params);
      EXPECT_EQ(from_csv[0].spec.energy->f_mhz, record.spec.energy->f_mhz);
      EXPECT_EQ(from_csv[0].spec.energy->voltage, record.spec.energy->voltage);
    }
  }
}

TEST(EnergyRecordProperties, RequestNeverPerturbsSimulationColumns) {
  // The energy request must be invisible to the simulation: every
  // non-energy column of the record is identical with and without it.
  scenario::RunSpec plain;
  plain.workload = "sqrt32";
  plain.params.samples = 24;
  scenario::RunSpec requested = plain;
  requested.energy = scenario::EnergyRequest{
      scenario::EnergyRequest::Params::kAuto, 40.0, 0.0};

  const scenario::Engine engine(scenario::Registry::builtins());
  const scenario::RunRecord a = engine.run_one(plain);
  const scenario::RunRecord b = engine.run_one(requested);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.useful_ops, b.useful_ops);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.lockstep_fraction, b.lockstep_fraction);
  // And the warm-group identity ignores the request, so both specs share
  // one warm-up prefix in a grouped sweep.
  EXPECT_EQ(scenario::warm_group_key(plain), scenario::warm_group_key(requested));
}

}  // namespace
}  // namespace ulpsync
