// Unit tests for the TR16 ISA: encoding, decoding, field validation,
// disassembly, and classification helpers.

#include <gtest/gtest.h>

#include "isa/isa.h"
#include "util/rng.h"

namespace ulpsync::isa {
namespace {

TEST(IsaTables, EveryOpcodeHasUniqueMnemonic) {
  for (unsigned i = 0; i < kNumOpcodes; ++i) {
    for (unsigned j = i + 1; j < kNumOpcodes; ++j) {
      EXPECT_NE(opcode_info(static_cast<Opcode>(i)).mnemonic,
                opcode_info(static_cast<Opcode>(j)).mnemonic);
    }
  }
}

TEST(IsaTables, MnemonicLookupRoundTrips) {
  for (unsigned i = 0; i < kNumOpcodes; ++i) {
    const auto op = static_cast<Opcode>(i);
    const auto found = opcode_from_mnemonic(opcode_info(op).mnemonic);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, op);
  }
}

TEST(IsaTables, MnemonicLookupIsCaseInsensitive) {
  EXPECT_EQ(opcode_from_mnemonic("ADD"), Opcode::kAdd);
  EXPECT_EQ(opcode_from_mnemonic("SiNc"), Opcode::kSinc);
  EXPECT_EQ(opcode_from_mnemonic("nonsense"), std::nullopt);
  EXPECT_EQ(opcode_from_mnemonic(""), std::nullopt);
}

TEST(IsaEncoding, RegisterFieldsRoundTrip) {
  Instruction instr{Opcode::kAdd, 3, 7, 15, 0};
  const auto word = encode(instr);
  ASSERT_TRUE(word.has_value());
  const auto back = decode(*word);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, instr);
}

TEST(IsaEncoding, Imm14SignedRange) {
  Instruction instr{Opcode::kAddi, 1, 2, 0, kImm14Max};
  EXPECT_TRUE(encode(instr).has_value());
  instr.imm = kImm14Min;
  EXPECT_TRUE(encode(instr).has_value());
  instr.imm = kImm14Max + 1;
  EXPECT_FALSE(encode(instr).has_value());
  instr.imm = kImm14Min - 1;
  EXPECT_FALSE(encode(instr).has_value());
}

TEST(IsaEncoding, NegativeImmediatesSignExtend) {
  Instruction instr{Opcode::kAddi, 1, 2, 0, -1};
  const auto word = encode(instr);
  ASSERT_TRUE(word.has_value());
  EXPECT_EQ(decode(*word)->imm, -1);
  instr.imm = -4096;
  EXPECT_EQ(decode(*encode(instr))->imm, -4096);
}

TEST(IsaEncoding, Movi16BitImmediate) {
  Instruction instr{Opcode::kMovi, 5, 0, 0, 0xFFFF};
  const auto word = encode(instr);
  ASSERT_TRUE(word.has_value());
  EXPECT_EQ(decode(*word)->imm, 0xFFFF);
  instr.imm = 0x10000;
  EXPECT_FALSE(encode(instr).has_value());
  instr.imm = -1;
  EXPECT_FALSE(encode(instr).has_value());
}

TEST(IsaEncoding, RejectsOutOfRangeRegisters) {
  Instruction instr{Opcode::kAdd, 16, 0, 0, 0};
  EXPECT_FALSE(encode(instr).has_value());
}

TEST(IsaEncoding, RejectsInvalidCsrIndex) {
  Instruction instr{Opcode::kCsrr, 1, 0, 0, 3};
  EXPECT_FALSE(encode(instr).has_value());
  instr.imm = -1;
  EXPECT_FALSE(encode(instr).has_value());
  instr.imm = 2;
  EXPECT_TRUE(encode(instr).has_value());
}

TEST(IsaEncoding, RejectsStrayImmediateOnRegisterForms) {
  Instruction instr{Opcode::kAdd, 1, 2, 3, 5};
  EXPECT_FALSE(encode(instr).has_value());
}

TEST(IsaEncoding, DecodeRejectsInvalidOpcodeBits) {
  EXPECT_FALSE(decode(0xFFFFFFFFu).has_value());
  EXPECT_FALSE(decode(static_cast<std::uint32_t>(kNumOpcodes) << 26).has_value());
}

TEST(IsaEncoding, RandomInstructionsRoundTrip) {
  util::Rng rng(123);
  for (int trial = 0; trial < 2000; ++trial) {
    Instruction instr;
    instr.op = static_cast<Opcode>(rng.next_below(kNumOpcodes));
    const Format fmt = opcode_info(instr.op).format;
    instr.rd = static_cast<std::uint8_t>(rng.next_below(16));
    instr.ra = static_cast<std::uint8_t>(rng.next_below(16));
    instr.rb = static_cast<std::uint8_t>(rng.next_below(16));
    switch (fmt) {
      case Format::kI16:
        instr.imm = static_cast<std::int32_t>(rng.next_below(0x10000));
        break;
      case Format::kCsrR:
      case Format::kCsrW:
        instr.imm = static_cast<std::int32_t>(rng.next_below(kNumCsrs));
        break;
      case Format::kI:
      case Format::kSt:
      case Format::kRi:
      case Format::kB:
      case Format::kJal:
      case Format::kSync:
        instr.imm = rng.next_in_range(kImm14Min, kImm14Max);
        break;
      default:
        instr.imm = 0;
    }
    // Zero out fields the format does not encode so equality holds.
    if (fmt == Format::kI16) { instr.ra = 0; instr.rb = 0; }
    if (fmt == Format::kB || fmt == Format::kSync || fmt == Format::kN)
      { instr.rd = 0; instr.ra = 0; instr.rb = 0; }
    if (fmt == Format::kRr) instr.rd = 0;
    if (fmt == Format::kRi) { instr.rd = 0; instr.rb = 0; }
    if (fmt == Format::kJr) { instr.rd = 0; instr.rb = 0; }
    if (fmt == Format::kCsrR) { instr.ra = 0; instr.rb = 0; }
    if (fmt == Format::kCsrW) { instr.rd = 0; instr.rb = 0; }
    if (fmt == Format::kI || fmt == Format::kSt) instr.rb = 0;
    if (fmt == Format::kJal) { instr.ra = 0; instr.rb = 0; }
    const auto word = encode(instr);
    ASSERT_TRUE(word.has_value()) << disassemble(instr);
    EXPECT_EQ(*decode(*word), instr) << disassemble(instr);
  }
}

TEST(IsaDisassembly, RendersRepresentativeForms) {
  EXPECT_EQ(disassemble({Opcode::kAdd, 3, 1, 2, 0}), "add r3, r1, r2");
  EXPECT_EQ(disassemble({Opcode::kLd, 4, 2, 0, 16}), "ld r4, [r2+16]");
  EXPECT_EQ(disassemble({Opcode::kLd, 4, 2, 0, -3}), "ld r4, [r2-3]");
  EXPECT_EQ(disassemble({Opcode::kSt, 5, 2, 0, 7}), "st [r2+7], r5");
  EXPECT_EQ(disassemble({Opcode::kMovi, 1, 0, 0, 512}), "movi r1, 512");
  EXPECT_EQ(disassemble({Opcode::kBne, 0, 0, 0, -4}), "bne -4");
  EXPECT_EQ(disassemble({Opcode::kSinc, 0, 0, 0, 3}), "sinc #3");
  EXPECT_EQ(disassemble({Opcode::kHalt, 0, 0, 0, 0}), "halt");
  EXPECT_EQ(disassemble({Opcode::kLdx, 1, 2, 3, 0}), "ldx r1, [r2+r3]");
  EXPECT_EQ(disassemble({Opcode::kCsrr, 1, 0, 0, 0}), "csrr r1, #0");
  EXPECT_EQ(disassemble({Opcode::kJr, 0, 7, 0, 0}), "jr r7");
}

TEST(IsaClassification, DataMemoryOpcodes) {
  EXPECT_TRUE(accesses_data_memory(Opcode::kLd));
  EXPECT_TRUE(accesses_data_memory(Opcode::kStx));
  EXPECT_TRUE(accesses_data_memory(Opcode::kSinc));
  EXPECT_TRUE(accesses_data_memory(Opcode::kSdec));
  EXPECT_FALSE(accesses_data_memory(Opcode::kAdd));
  EXPECT_FALSE(accesses_data_memory(Opcode::kCsrr));
}

TEST(IsaClassification, ControlFlowOpcodes) {
  EXPECT_TRUE(is_control_flow(Opcode::kBeq));
  EXPECT_TRUE(is_control_flow(Opcode::kBra));
  EXPECT_TRUE(is_control_flow(Opcode::kJal));
  EXPECT_TRUE(is_control_flow(Opcode::kJr));
  EXPECT_FALSE(is_control_flow(Opcode::kHalt));
  EXPECT_FALSE(is_control_flow(Opcode::kSdec));
}

TEST(IsaClassification, ConditionalBranches) {
  for (auto op : {Opcode::kBeq, Opcode::kBne, Opcode::kBlt, Opcode::kBge,
                  Opcode::kBltu, Opcode::kBgeu}) {
    EXPECT_TRUE(is_conditional_branch(op));
  }
  EXPECT_FALSE(is_conditional_branch(Opcode::kBra));
  EXPECT_FALSE(is_conditional_branch(Opcode::kJal));
}

}  // namespace
}  // namespace ulpsync::isa
