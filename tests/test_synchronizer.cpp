// Unit tests for the hardware synchronizer in isolation, against a fake
// data-memory port: merged check-ins/check-outs, counter bookkeeping,
// wake-on-zero, the bank lock, and the statistics counters.

#include <gtest/gtest.h>

#include <array>

#include "core/synchronizer.h"

namespace ulpsync::core {
namespace {

class FakeDm : public DataMemoryPort {
 public:
  std::uint16_t read_word(std::uint32_t addr) override { return words_.at(addr); }
  void write_word(std::uint32_t addr, std::uint16_t value) override {
    words_.at(addr) = value;
  }
  [[nodiscard]] unsigned bank_of(std::uint32_t addr) const override {
    return addr / 16;
  }
  std::array<std::uint16_t, 64> words_{};
};

TEST(CheckpointWord, PacksFlagsAndCounter) {
  CheckpointWord word{0xA5, 7};
  EXPECT_EQ(word.pack(), 0x07A5);
  const auto back = CheckpointWord::unpack(0x07A5);
  EXPECT_EQ(back.flags, 0xA5);
  EXPECT_EQ(back.counter, 7);
}

class SynchronizerTest : public ::testing::Test {
 protected:
  FakeDm dm_;
  Synchronizer sync_{dm_, 8};

  /// Runs one cycle: begin, submit the given requests, finish.
  Synchronizer::CycleEvents cycle(
      std::initializer_list<std::tuple<unsigned, std::uint32_t, bool>> requests = {}) {
    auto events = sync_.begin_cycle();
    for (const auto& [core, addr, checkout] : requests) {
      EXPECT_TRUE(sync_.submit(core, addr, checkout));
    }
    sync_.finish_cycle();
    return events;
  }
};

TEST_F(SynchronizerTest, SingleCheckinSetsFlagAndCounter) {
  cycle({{2, 5, false}});
  auto events = cycle();  // write phase
  EXPECT_EQ(events.completed_checkin_mask, 1u << 2);
  EXPECT_EQ(events.wake_mask, 0);
  const auto word = CheckpointWord::unpack(dm_.words_[5]);
  EXPECT_EQ(word.flags, 1u << 2);
  EXPECT_EQ(word.counter, 1);
}

TEST_F(SynchronizerTest, MergedCheckinsCountOnce) {
  cycle({{0, 5, false}, {1, 5, false}, {2, 5, false}});
  auto events = cycle();
  EXPECT_EQ(events.completed_checkin_mask, 0b111);
  const auto word = CheckpointWord::unpack(dm_.words_[5]);
  EXPECT_EQ(word.counter, 3);
  EXPECT_EQ(word.flags, 0b111);
  EXPECT_EQ(sync_.stats().rmw_ops, 1u);
  EXPECT_EQ(sync_.stats().dm_accesses, 2u);  // one read + one write
  EXPECT_EQ(sync_.stats().merged_requests, 2u);
  EXPECT_EQ(sync_.stats().max_merge_width, 3u);
}

TEST_F(SynchronizerTest, CheckoutOfAllWakesEveryFlaggedCore) {
  cycle({{0, 5, false}, {3, 5, false}});
  cycle();  // check-in write phase
  cycle({{0, 5, true}, {3, 5, true}});
  auto events = cycle();
  EXPECT_EQ(events.completed_checkout_mask, 0b1001);
  EXPECT_EQ(events.wake_mask, 0b1001);
  EXPECT_EQ(dm_.words_[5], 0) << "checkpoint word must be cleared";
  EXPECT_EQ(sync_.stats().wakeup_events, 1u);
  EXPECT_EQ(sync_.stats().wakeups_delivered, 2u);
}

TEST_F(SynchronizerTest, PartialCheckoutDoesNotWake) {
  cycle({{0, 5, false}, {1, 5, false}});
  cycle();
  cycle({{0, 5, true}});
  auto events = cycle();
  EXPECT_EQ(events.wake_mask, 0);
  const auto word = CheckpointWord::unpack(dm_.words_[5]);
  EXPECT_EQ(word.counter, 1);
  EXPECT_EQ(word.flags, 0b11) << "flags stay set until the group wakes";
}

TEST_F(SynchronizerTest, StaggeredCheckinsSerializeOnTheLock) {
  auto events = sync_.begin_cycle();
  EXPECT_TRUE(sync_.submit(0, 5, false));
  sync_.finish_cycle();
  EXPECT_EQ(sync_.locked_bank(), 0);

  // Next cycle: the word is in its write phase; a new request for the same
  // word must be accepted only as a fresh RMW afterwards, and a request
  // while in-flight is rejected... (in-flight ends at begin_cycle, so the
  // rejection window is within one cycle: submit twice in the same cycle to
  // different addresses).
  events = sync_.begin_cycle();
  EXPECT_EQ(events.completed_checkin_mask, 1u << 0);
  EXPECT_TRUE(sync_.submit(1, 5, false));
  EXPECT_FALSE(sync_.submit(2, 7, false)) << "different word: lock rejects";
  EXPECT_TRUE(sync_.submit(3, 5, false)) << "same word merges";
  sync_.finish_cycle();
  cycle();
  const auto word = CheckpointWord::unpack(dm_.words_[5]);
  EXPECT_EQ(word.counter, 3);
}

TEST_F(SynchronizerTest, SeparateSyncPointsAreIndependent) {
  cycle({{0, 5, false}});
  cycle({{1, 9, false}});  // previous RMW completed; new word accepted
  cycle();
  EXPECT_EQ(CheckpointWord::unpack(dm_.words_[5]).counter, 1);
  EXPECT_EQ(CheckpointWord::unpack(dm_.words_[9]).counter, 1);
}

TEST_F(SynchronizerTest, SelfContainedCheckInOutByOneCore) {
  // A core alone in a region: checks in, later checks out -> wakes itself.
  cycle({{4, 6, false}});
  cycle();
  cycle({{4, 6, true}});
  auto events = cycle();
  EXPECT_EQ(events.wake_mask, 1u << 4);
  EXPECT_EQ(dm_.words_[6], 0);
}

TEST_F(SynchronizerTest, MixedCheckinCheckoutInOneMerge) {
  // Core 0 enters while core 1 leaves (nested/adjacent regions sharing a
  // cycle): net counter change is zero, no wake (counter not zero... the
  // merged update is ins=1, outs=1 on a counter of 1 -> stays 1).
  cycle({{1, 5, false}});
  cycle();
  auto begin = sync_.begin_cycle();
  EXPECT_TRUE(sync_.submit(0, 5, false));
  EXPECT_TRUE(sync_.submit(1, 5, true));
  sync_.finish_cycle();
  auto events = cycle();
  EXPECT_EQ(events.completed_checkin_mask, 0b01);
  EXPECT_EQ(events.completed_checkout_mask, 0b10);
  EXPECT_EQ(events.wake_mask, 0);
  const auto word = CheckpointWord::unpack(dm_.words_[5]);
  EXPECT_EQ(word.counter, 1);
  (void)begin;
}

TEST_F(SynchronizerTest, BusyReflectsInflightRmw) {
  EXPECT_FALSE(sync_.busy());
  (void)sync_.begin_cycle();
  ASSERT_TRUE(sync_.submit(0, 5, false));
  sync_.finish_cycle();
  EXPECT_TRUE(sync_.busy());
  (void)sync_.begin_cycle();
  sync_.finish_cycle();
  EXPECT_FALSE(sync_.busy());
}

TEST_F(SynchronizerTest, LockedBankMatchesPortMapping) {
  (void)sync_.begin_cycle();
  ASSERT_TRUE(sync_.submit(0, 40, false));  // bank = 40 / 16 = 2
  sync_.finish_cycle();
  EXPECT_EQ(sync_.locked_bank(), 2);
}

TEST_F(SynchronizerTest, EightWideMergeInTwoCycles) {
  auto events = sync_.begin_cycle();
  for (unsigned core = 0; core < 8; ++core)
    EXPECT_TRUE(sync_.submit(core, 5, false));
  sync_.finish_cycle();
  events = cycle();
  EXPECT_EQ(events.completed_checkin_mask, 0xFF);
  EXPECT_EQ(CheckpointWord::unpack(dm_.words_[5]).counter, 8);
  EXPECT_EQ(sync_.stats().rmw_ops, 1u) << "one RMW regardless of width";
  EXPECT_EQ(sync_.stats().max_merge_width, 8u);
}

TEST_F(SynchronizerTest, StatsResetClears) {
  cycle({{0, 5, false}});
  cycle();
  sync_.reset_stats();
  EXPECT_EQ(sync_.stats().rmw_ops, 0u);
  EXPECT_EQ(sync_.stats().checkins, 0u);
}

}  // namespace
}  // namespace ulpsync::core
