// Recorded event-schedule replay: differential record -> replay suites.
//
// The contract under test (sim/event_schedule.h + scenario/replay.h):
// recording a run's external-event schedule and replaying it into a
// freshly prepared platform reproduces the original bit-exactly — final
// snapshot bytes, counters, trace timelines, VCD output, and the
// engine-level CSV row — for every builtin workload, through the scalar
// engine, the batched engine, and the sharded work-spool path, serial and
// parallel. Golden `.evt` envelopes committed under tests/golden/
// additionally pin the wire format and the recorded schedules of selected
// workloads (regenerate with `snapshot_tool record`, see
// tests/golden/README.md). On top of exact replay, the fault-injection
// suite asserts `find_first_divergence_replayed` localizes DM bit flips,
// IM bit flips, and delayed/dropped wake-ups to their first architectural
// effect.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "asm/assembler.h"
#include "scenario/batch.h"
#include "scenario/engine.h"
#include "scenario/record.h"
#include "scenario/registry.h"
#include "scenario/replay.h"
#include "scenario/shard.h"
#include "sim/event_schedule.h"
#include "sim/snapshot.h"
#include "sim/trace.h"
#include "sim/vcd.h"

namespace ulpsync {
namespace {

namespace fs = std::filesystem;

using scenario::BatchEngine;
using scenario::BatchOptions;
using scenario::DesignVariant;
using scenario::Engine;
using scenario::EngineOptions;
using scenario::RecordedRun;
using scenario::RecordOutcome;
using scenario::Registry;
using scenario::ReplayReport;
using scenario::ReplayRig;
using scenario::RunRecord;
using scenario::RunSpec;

constexpr unsigned kGoldenSamples = 48;

/// Fresh per-test scratch directory.
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/replay_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A bounded spec for `name` on its natural design: the synchronized
/// design up to the synchronizer's 8-core ceiling, crossbar-only above it.
RunSpec spec_for(const std::string& name, unsigned samples) {
  RunSpec spec;
  spec.workload = name;
  spec.params.samples = samples;
  spec.max_cycles = 3'000'000;
  const auto workload = Registry::builtins().make(name, spec.params);
  spec.design = workload->num_cores() <= 8 ? DesignVariant::synchronized()
                                           : DesignVariant::xbar_only();
  return spec;
}

std::vector<std::string> builtin_names() {
  return Registry::builtins().names();
}

std::string param_name(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (auto& c : name) {
    if (c == '.') c = '_';
  }
  return name;
}

// --- record -> replay differential, every builtin ---------------------------

class ReplayDifferential : public ::testing::TestWithParam<std::string> {};

TEST_P(ReplayDifferential, CsvRowAndFinalStateReplayBitIdentical) {
  const RunSpec spec = spec_for(GetParam(), 32);
  const RecordOutcome outcome =
      scenario::record_one(spec, Registry::builtins());
  ASSERT_TRUE(outcome.record.ok()) << outcome.record.verify_error;

  const ReplayReport report =
      scenario::replay_recorded_run(outcome.recorded, Registry::builtins());
  EXPECT_TRUE(report.bit_identical) << GetParam() << ": " << report.error;
  EXPECT_EQ(report.csv_row, outcome.recorded.csv_row) << GetParam();
}

TEST_P(ReplayDifferential, FinalSnapshotBytesAndCountersReplayBitIdentical) {
  const RunSpec spec = spec_for(GetParam(), 32);
  const auto workload =
      Registry::builtins().make(spec.workload, spec.params);

  // Original run, recorded.
  sim::Platform original(scenario::resolved_config(spec, *workload));
  original.load_program(workload->program(spec.with_synchronizer()));
  sim::EventRecorder recorder;
  recorder.attach(original);
  workload->load_inputs(original);
  const sim::RunResult result = workload->drive(original, spec.max_cycles);
  std::vector<std::uint64_t> host_words;
  if (const scenario::WindowedDrive* windowed = workload->windowed_drive())
    host_words = windowed->host_words();
  const sim::EventSchedule schedule = recorder.finish(result, host_words);
  const sim::Snapshot original_final = original.save_snapshot();

  // Replay into a fresh platform; no inputs loaded — the schedule carries
  // them.
  sim::Platform replayed(scenario::resolved_config(spec, *workload));
  replayed.load_program(workload->program(spec.with_synchronizer()));
  const sim::ReplayDriver driver(schedule);
  const sim::ReplayOutcome outcome = driver.replay(replayed);
  ASSERT_TRUE(outcome.ok()) << GetParam() << ": " << outcome.error;
  EXPECT_EQ(outcome.result, result) << GetParam();

  const sim::Snapshot replayed_final = replayed.save_snapshot();
  EXPECT_EQ(replayed_final.counters, original_final.counters) << GetParam();
  EXPECT_EQ(replayed_final.serialize(), original_final.serialize())
      << GetParam() << ": "
      << sim::diff_snapshots(original_final, replayed_final);
}

TEST_P(ReplayDifferential, TraceAndVcdOfReplayMatchOriginal) {
  const RunSpec spec = spec_for(GetParam(), 24);
  const auto workload =
      Registry::builtins().make(spec.workload, spec.params);

  // One leg = (timeline text, VCD bytes) of a fully observed run. The
  // original leg records while observed; the replay leg re-delivers the
  // recorded schedule under the same observer. The recorded hash is
  // observer-invariant (normalized_state_hash), so replay still verifies.
  sim::EventSchedule schedule;
  auto run_leg = [&](bool replay) {
    sim::Platform platform(scenario::resolved_config(spec, *workload));
    platform.load_program(workload->program(spec.with_synchronizer()));
    std::ostringstream vcd_out;
    sim::VcdWriter vcd(vcd_out);
    vcd.attach(platform);  // VCD samples through the platform observer
    if (replay) {
      const sim::ReplayDriver driver(schedule);
      const sim::ReplayOutcome outcome = driver.replay(platform);
      EXPECT_TRUE(outcome.ok()) << GetParam() << ": " << outcome.error;
    } else {
      sim::EventRecorder recorder;
      recorder.attach(platform);
      workload->load_inputs(platform);
      const sim::RunResult result = workload->drive(platform, spec.max_cycles);
      std::vector<std::uint64_t> host_words;
      if (const scenario::WindowedDrive* windowed = workload->windowed_drive())
        host_words = windowed->host_words();
      schedule = recorder.finish(result, host_words);
    }
    vcd.finish();
    return vcd_out.str();
  };
  const std::string vcd_original = run_leg(/*replay=*/false);
  const std::string vcd_replayed = run_leg(/*replay=*/true);
  EXPECT_EQ(vcd_replayed, vcd_original) << GetParam();

  // Trace leg: same schedule, timeline tracer on both sides.
  auto trace_leg = [&](bool replay) {
    sim::Platform platform(scenario::resolved_config(spec, *workload));
    platform.load_program(workload->program(spec.with_synchronizer()));
    sim::TimelineTracer tracer;
    tracer.attach(platform);
    if (replay) {
      const sim::ReplayDriver driver(schedule);
      const sim::ReplayOutcome outcome = driver.replay(platform);
      EXPECT_TRUE(outcome.ok()) << GetParam() << ": " << outcome.error;
    } else {
      workload->load_inputs(platform);
      (void)workload->drive(platform, spec.max_cycles);
    }
    return tracer.timeline(800);
  };
  EXPECT_EQ(trace_leg(/*replay=*/true), trace_leg(/*replay=*/false))
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Builtins, ReplayDifferential,
                         ::testing::ValuesIn(builtin_names()), param_name);

// --- engine, batch, and shard recording paths -------------------------------

TEST(EngineRecording, RecordPathWritesEnvelopeAndKeepsRecordBitIdentical) {
  const std::string dir = scratch_dir("engine_record");
  RunSpec spec = spec_for("mrpfltr", 32);

  // Reference: the same spec without recording.
  const Engine engine(Registry::builtins());
  const RunRecord plain = engine.run_one(spec);
  ASSERT_TRUE(plain.ok()) << plain.verify_error;

  spec.record_events_to = dir + "/run.evt";
  const RunRecord recorded = engine.run_one(spec);
  ASSERT_TRUE(recorded.ok()) << recorded.verify_error;

  // Recording must not change the record (modulo the path field itself,
  // which is host plumbing and not serialized into the CSV).
  EXPECT_EQ(scenario::to_csv_row(recorded), scenario::to_csv_row(plain));

  const RecordedRun envelope =
      scenario::read_recorded_run_file(spec.record_events_to);
  EXPECT_EQ(envelope.csv_row, scenario::to_csv_row(plain));
  const ReplayReport report =
      scenario::replay_recorded_run(envelope, Registry::builtins());
  EXPECT_TRUE(report.bit_identical) << report.error;
}

TEST(EngineRecording, SerialAndParallelRecordingAreByteIdentical) {
  const std::string serial_dir = scratch_dir("record_serial");
  const std::string parallel_dir = scratch_dir("record_parallel");

  auto specs_into = [](const std::string& dir) {
    std::vector<RunSpec> specs;
    for (const char* name : {"mrpfltr", "sqrt32", "clip8", "streaming"}) {
      RunSpec spec = spec_for(name, 32);
      spec.record_events_to =
          dir + "/run-" + std::to_string(specs.size()) + ".evt";
      specs.push_back(std::move(spec));
    }
    return specs;
  };

  EngineOptions serial_options;
  serial_options.jobs = 1;
  const Engine serial(Registry::builtins(), serial_options);
  const std::string serial_csv = scenario::to_csv(serial.run(specs_into(serial_dir)));

  EngineOptions parallel_options;
  parallel_options.jobs = 4;
  const Engine parallel(Registry::builtins(), parallel_options);
  const std::string parallel_csv =
      scenario::to_csv(parallel.run(specs_into(parallel_dir)));

  EXPECT_EQ(parallel_csv, serial_csv);
  for (int i = 0; i < 4; ++i) {
    const std::string name = "/run-" + std::to_string(i) + ".evt";
    const auto a = scenario::read_recorded_run_file(serial_dir + name);
    const auto b = scenario::read_recorded_run_file(parallel_dir + name);
    EXPECT_EQ(b.serialize(), a.serialize()) << name;
  }
}

TEST(EngineRecording, BatchEngineFallsBackToScalarRecordingBitIdentically) {
  const std::string dir = scratch_dir("batch_record");

  // streaming is batch-eligible (windowed drive); a recording spec must
  // take the scalar fallback and still produce identical rows + envelope.
  std::vector<RunSpec> specs;
  for (const char* name : {"streaming", "streaming.uniform"}) {
    RunSpec spec = spec_for(name, 32);
    spec.record_events_to =
        dir + "/run-" + std::to_string(specs.size()) + ".evt";
    specs.push_back(std::move(spec));
  }

  BatchOptions options;
  options.jobs = 2;
  const BatchEngine batch(Registry::builtins(), options);
  const scenario::BatchResult result = batch.run(specs);
  EXPECT_EQ(result.stats.batched_runs, 0u)
      << "recording specs must not enter batch lanes";

  std::vector<RunSpec> plain = specs;
  for (RunSpec& spec : plain) spec.record_events_to.clear();
  const Engine engine(Registry::builtins());
  EXPECT_EQ(scenario::to_csv(result.records),
            scenario::to_csv(engine.run(plain)));

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto envelope =
        scenario::read_recorded_run_file(specs[i].record_events_to);
    const ReplayReport report =
        scenario::replay_recorded_run(envelope, Registry::builtins());
    EXPECT_TRUE(report.bit_identical) << specs[i].workload << ": "
                                      << report.error;
  }
}

TEST(ShardRecording, WorkSpoolRecordDirRecordsEveryRunReplayably) {
  const std::string spool = scratch_dir("spool");
  const std::string evt_dir = scratch_dir("spool_evt");

  std::vector<RunSpec> specs;
  for (const char* name : {"mrpfltr", "sqrt32", "streaming", "sleepgen"}) {
    specs.push_back(spec_for(name, 32));
  }
  scenario::SpoolOptions plan_options;
  plan_options.shards = 2;
  (void)scenario::plan_spool(spool, specs, Registry::builtins(), plan_options);

  scenario::WorkOptions work_options;
  work_options.record_dir = evt_dir;
  const scenario::WorkReport report =
      scenario::work_spool(spool, Registry::builtins(), work_options);
  EXPECT_EQ(report.runs_executed, specs.size());

  const std::string merged = scenario::merge_spool(spool);
  const Engine engine(Registry::builtins());
  EXPECT_EQ(merged, scenario::to_csv(engine.run(specs)));

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::string path = evt_dir + "/run-" + std::to_string(i) + ".evt";
    ASSERT_TRUE(fs::exists(path)) << path;
    const RecordedRun envelope = scenario::read_recorded_run_file(path);
    EXPECT_EQ(envelope.spec.workload, specs[i].workload) << i;
    const ReplayReport replay =
        scenario::replay_recorded_run(envelope, Registry::builtins());
    EXPECT_TRUE(replay.bit_identical) << specs[i].workload << ": "
                                      << replay.error;
    // The merged CSV's row for this run is exactly the recorded row.
    EXPECT_NE(merged.find(envelope.csv_row), std::string::npos)
        << specs[i].workload;
  }
}

// --- golden schedules --------------------------------------------------------

std::map<std::string, std::uint64_t> load_golden_hashes() {
  std::map<std::string, std::uint64_t> hashes;
  std::ifstream file(std::string(ULPSYNC_GOLDEN_DIR) + "/hashes.txt");
  EXPECT_TRUE(file.is_open()) << "missing tests/golden/hashes.txt";
  std::string hash_hex, filename;
  while (file >> hash_hex >> filename) {
    const std::size_t slash = filename.find_last_of('/');
    if (slash != std::string::npos) filename = filename.substr(slash + 1);
    hashes[filename] = std::stoull(hash_hex, nullptr, 16);
  }
  return hashes;
}

const char* const kGoldenSchedules[] = {"mrpfltr", "sqrt32", "streaming",
                                        "sleepgen"};

std::string golden_param_name(
    const ::testing::TestParamInfo<const char*>& info) {
  std::string name = info.param;
  for (auto& c : name) {
    if (c == '.') c = '_';
  }
  return name;
}

class GoldenSchedules : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenSchedules, CommittedEnvelopeAndHashAreStable) {
  const std::string name = GetParam();
  const std::string path =
      std::string(ULPSYNC_GOLDEN_DIR) + "/" + name + ".evt";

  // A freshly recorded envelope must byte-match the committed one (and
  // therefore its committed content hash): the wire format, the event
  // stream, and the recorded outcome are all pinned.
  const RunSpec spec = spec_for(name, kGoldenSamples);
  const RecordOutcome outcome =
      scenario::record_one(spec, Registry::builtins());
  ASSERT_TRUE(outcome.record.ok()) << outcome.record.verify_error;

  const RecordedRun committed = scenario::read_recorded_run_file(path);
  EXPECT_EQ(outcome.recorded.serialize(), committed.serialize())
      << name << " drifted from its golden schedule; if the change is "
      << "intentional, regenerate with: snapshot_tool record " << name
      << " --samples 48 (see tests/golden/README.md)";

  const auto hashes = load_golden_hashes();
  const auto entry = hashes.find(name + ".evt");
  ASSERT_NE(entry, hashes.end()) << "no hash recorded for " << name;
  EXPECT_EQ(committed.content_hash(), entry->second) << name;
}

TEST_P(GoldenSchedules, CommittedEnvelopeReplaysBitIdentical) {
  const RecordedRun committed = scenario::read_recorded_run_file(
      std::string(ULPSYNC_GOLDEN_DIR) + "/" + GetParam() + ".evt");
  const ReplayReport report =
      scenario::replay_recorded_run(committed, Registry::builtins());
  EXPECT_TRUE(report.bit_identical) << GetParam() << ": " << report.error;
}

INSTANTIATE_TEST_SUITE_P(Builtins, GoldenSchedules,
                         ::testing::ValuesIn(kGoldenSchedules),
                         golden_param_name);

// --- fault injection + bisection localization -------------------------------

/// A recorded sleepgen run: duty-cycled, so its schedule has DM deposits
/// *and* wake-up interrupts — every fault class has targets.
const RecordedRun& sleepgen_recording() {
  static const RecordedRun run = [] {
    const RunSpec spec = spec_for("sleepgen", 24);
    RecordOutcome outcome = scenario::record_one(spec, Registry::builtins());
    EXPECT_TRUE(outcome.record.ok()) << outcome.record.verify_error;
    return std::move(outcome.recorded);
  }();
  return run;
}

TEST(FaultBisection, CleanReplayPairNeverDiverges) {
  const RecordedRun& run = sleepgen_recording();
  ReplayRig a = scenario::make_replay_rig(run, Registry::builtins());
  ReplayRig b = scenario::make_replay_rig(run, Registry::builtins());
  sim::ReplayCursor cursor_a(*a.platform, run.schedule, {});
  sim::ReplayCursor cursor_b(*b.platform, run.schedule, {});
  const sim::ReplayDivergence divergence = sim::find_first_divergence_replayed(
      cursor_a, cursor_b, run.schedule.final_result.cycles);
  EXPECT_FALSE(divergence.diverged) << divergence.delta;
  // Both cursors reproduce the recorded final state.
  EXPECT_EQ(sim::normalized_state_hash(a.platform->save_snapshot()),
            run.schedule.final_state_hash);
}

TEST(FaultBisection, DmBitFlipLocalizesToFirstConsumingCycle) {
  const RecordedRun& run = sleepgen_recording();
  // Corrupt the first recorded input deposit right at its deposit cycle:
  // the workload reads what the host wrote, so the flip must reach core
  // state.
  const sim::ExternalEvent* deposit = nullptr;
  for (const sim::ExternalEvent& event : run.schedule.events) {
    if (event.kind == sim::EventKind::kDmWrite ||
        event.kind == sim::EventKind::kDmWriteBlock) {
      deposit = &event;
      break;
    }
  }
  ASSERT_NE(deposit, nullptr) << "sleepgen schedule has no DM deposits";

  sim::FaultAction fault;
  fault.kind = sim::FaultAction::Kind::kDmFlip;
  fault.cycle = deposit->cycle;
  fault.addr = deposit->addr;
  fault.bit = 0;
  const std::vector<sim::FaultAction> faults{fault};

  ReplayRig clean = scenario::make_replay_rig(run, Registry::builtins());
  ReplayRig faulty = scenario::make_replay_rig(run, Registry::builtins());
  sim::ReplayCursor clean_cursor(*clean.platform, run.schedule, {});
  sim::ReplayCursor faulty_cursor(*faulty.platform, run.schedule, faults);
  const sim::ReplayDivergence divergence = sim::find_first_divergence_replayed(
      clean_cursor, faulty_cursor, run.schedule.final_result.cycles,
      sim::DivergenceScope::kCoreState, /*stride=*/512);
  ASSERT_TRUE(divergence.diverged)
      << "DM flip at cycle " << fault.cycle << " addr " << fault.addr
      << " never reached core state";
  // kCoreState ignores DM, so the divergence is the first *consumption* of
  // the corrupted word — strictly after the injection.
  EXPECT_GT(divergence.first_divergent_cycle, fault.cycle);
  EXPECT_FALSE(divergence.delta.empty());
}

TEST(FaultBisection, ImBitFlipLocalizesOrRejectsAsUndecodable) {
  const RecordedRun& run = sleepgen_recording();
  const auto workload =
      Registry::builtins().make(run.spec.workload, run.spec.params);
  const assembler::Program& program =
      workload->program(run.spec.with_synchronizer());
  ASSERT_FALSE(program.image.empty());

  // Scan deterministically for a flip that both loads and diverges; count
  // undecodable flips as the expected other outcome. The scan is bounded —
  // the first decodable corruption of early instructions diverges almost
  // immediately in practice.
  bool localized = false;
  unsigned undecodable = 0;
  const std::size_t scan_words = std::min<std::size_t>(program.image.size(), 16);
  for (std::size_t word = 0; word < scan_words && !localized; ++word) {
    for (unsigned bit = 0; bit < 32 && !localized; ++bit) {
      std::vector<std::uint32_t> corrupted = program.image;
      corrupted[word] ^= std::uint32_t{1} << bit;

      ReplayRig faulty;
      faulty.workload = workload;
      faulty.platform = std::make_unique<sim::Platform>(
          scenario::resolved_config(run.spec, *workload));
      try {
        faulty.platform->load_image(program.origin, corrupted);
      } catch (const std::invalid_argument&) {
        ++undecodable;
        continue;
      }
      ReplayRig clean = scenario::make_replay_rig(run, Registry::builtins());
      sim::ReplayCursor clean_cursor(*clean.platform, run.schedule, {});
      sim::ReplayCursor faulty_cursor(*faulty.platform, run.schedule, {});
      const sim::ReplayDivergence divergence =
          sim::find_first_divergence_replayed(
              clean_cursor, faulty_cursor,
              std::min<std::uint64_t>(run.schedule.final_result.cycles,
                                      50'000),
              sim::DivergenceScope::kCoreState, /*stride=*/512);
      if (divergence.diverged) {
        localized = true;
        EXPECT_FALSE(divergence.delta.empty());
      }
    }
  }
  EXPECT_TRUE(localized) << "no decodable IM flip diverged ("
                         << undecodable << " undecodable flips scanned)";
}

/// First recorded wake-up event of the sleepgen schedule, with a concrete
/// target core for the fault.
std::pair<std::size_t, unsigned> first_wake_event(const RecordedRun& run) {
  for (std::size_t i = 0; i < run.schedule.events.size(); ++i) {
    const sim::ExternalEvent& event = run.schedule.events[i];
    if (event.kind == sim::EventKind::kInterrupt)
      return {i, static_cast<unsigned>(event.core)};
    if (event.kind == sim::EventKind::kInterruptAll) return {i, 0u};
  }
  return {run.schedule.events.size(), 0u};
}

TEST(FaultBisection, DelayedWakeupLocalizesAtTheMissedWake) {
  const RecordedRun& run = sleepgen_recording();
  const auto [index, core] = first_wake_event(run);
  ASSERT_LT(index, run.schedule.events.size())
      << "sleepgen schedule has no wake-up interrupts";

  sim::FaultAction fault;
  fault.kind = sim::FaultAction::Kind::kDelayWake;
  fault.event_index = index;
  fault.core = core;
  fault.delay = 300;
  const std::vector<sim::FaultAction> faults{fault};

  ReplayRig clean = scenario::make_replay_rig(run, Registry::builtins());
  ReplayRig faulty = scenario::make_replay_rig(run, Registry::builtins());
  sim::ReplayCursor clean_cursor(*clean.platform, run.schedule, {});
  sim::ReplayCursor faulty_cursor(*faulty.platform, run.schedule, faults);
  const sim::ReplayDivergence divergence = sim::find_first_divergence_replayed(
      clean_cursor, faulty_cursor, run.schedule.final_result.cycles,
      sim::DivergenceScope::kCoreState, /*stride=*/256);
  ASSERT_TRUE(divergence.diverged);
  const std::uint64_t wake_cycle = run.schedule.events[index].cycle;
  // The faulted core misses its wake-up at the recorded cycle; the first
  // core-state difference appears right after it (and certainly before the
  // delayed delivery).
  EXPECT_GT(divergence.first_divergent_cycle, wake_cycle);
  EXPECT_LE(divergence.first_divergent_cycle, wake_cycle + fault.delay);
}

TEST(FaultBisection, DroppedWakeupLocalizesAndNeverRecovers) {
  const RecordedRun& run = sleepgen_recording();
  const auto [index, core] = first_wake_event(run);
  ASSERT_LT(index, run.schedule.events.size());

  sim::FaultAction fault;
  fault.kind = sim::FaultAction::Kind::kDropWake;
  fault.event_index = index;
  fault.core = core;
  const std::vector<sim::FaultAction> faults{fault};

  ReplayRig clean = scenario::make_replay_rig(run, Registry::builtins());
  ReplayRig faulty = scenario::make_replay_rig(run, Registry::builtins());
  sim::ReplayCursor clean_cursor(*clean.platform, run.schedule, {});
  sim::ReplayCursor faulty_cursor(*faulty.platform, run.schedule, faults);
  const sim::ReplayDivergence divergence = sim::find_first_divergence_replayed(
      clean_cursor, faulty_cursor, run.schedule.final_result.cycles,
      sim::DivergenceScope::kCoreState, /*stride=*/256);
  ASSERT_TRUE(divergence.diverged);
  EXPECT_GT(divergence.first_divergent_cycle,
            run.schedule.events[index].cycle);
  // The dropped wake-up's core sleeps in the faulty replay while the clean
  // one runs: the divergent pair must show a core-status difference.
  bool status_differs = false;
  for (std::size_t c = 0; c < divergence.clean_state.cores.size(); ++c) {
    if (divergence.clean_state.cores[c].status !=
        divergence.faulty_state.cores[c].status) {
      status_differs = true;
      break;
    }
  }
  EXPECT_TRUE(status_differs) << divergence.delta;
}

}  // namespace
}  // namespace ulpsync
