// Deterministic snapshot subsystem tests.
//
// The contract under test (sim/snapshot.h): save at cycle C, restore into a
// freshly constructed platform, run N more cycles — and *everything* is
// bit-identical to an uninterrupted C+N run: counters, synchronizer
// statistics, trace timelines, VCD output, final snapshot bytes; with and
// without idle fast-forward; including snapshots taken mid-RMW. Golden
// snapshot images committed under tests/golden/ additionally pin the wire
// format and the simulated state of every builtin workload at a fixed
// cycle; regenerate them with `snapshot_tool capture` (see
// tests/golden/README.md) after an intentional simulator change.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "asm/assembler.h"
#include "scenario/engine.h"
#include "scenario/registry.h"
#include "sim/platform.h"
#include "sim/snapshot.h"
#include "sim/trace.h"
#include "sim/vcd.h"

namespace ulpsync {
namespace {

using scenario::Engine;
using scenario::EngineOptions;
using scenario::Registry;
using scenario::RunSpec;

constexpr std::uint64_t kGoldenCycle = 600;
constexpr unsigned kGoldenSamples = 48;

/// Builds the same platform `snapshot_tool capture` and `Engine::run_one`
/// build for a builtin workload on the synchronized design.
struct WorkloadRig {
  std::shared_ptr<const scenario::Workload> workload;
  sim::Platform platform;

  WorkloadRig(const std::string& name, bool fast_forward)
      : workload(Registry::builtins().make(name, make_params())),
        platform(make_config(*workload, fast_forward)) {
    platform.load_program(workload->program(/*instrumented=*/true));
    workload->load_inputs(platform);
  }

  static scenario::WorkloadParams make_params() {
    scenario::WorkloadParams params;
    params.samples = kGoldenSamples;
    return params;
  }
  static sim::PlatformConfig make_config(const scenario::Workload& workload,
                                         bool fast_forward) {
    sim::PlatformConfig config = workload.base_config(/*with_synchronizer=*/true);
    config.fast_forward = fast_forward;
    return config;
  }
};

const char* const kBuiltins[] = {"mrpfltr", "sqrt32",    "mrpdln", "sqrt32.auto",
                                 "clip8",   "bandcount", "streaming"};

std::string param_name(const ::testing::TestParamInfo<const char*>& info) {
  std::string name = info.param;
  for (auto& c : name)
    if (c == '.') c = '_';
  return name;
}

// --- save -> restore -> run == straight run ---------------------------------

class SnapshotEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(SnapshotEquivalence, RestoredRunMatchesStraightRunBothFastForwardModes) {
  for (const bool fast_forward : {true, false}) {
    SCOPED_TRACE(fast_forward ? "fast-forward on" : "fast-forward off");
    const std::uint64_t continue_to = kGoldenCycle + 900;

    // Straight run to C+N.
    WorkloadRig straight(GetParam(), fast_forward);
    (void)straight.platform.run(continue_to);
    const auto straight_bytes = straight.platform.save_snapshot().serialize();

    // Interrupted run: save at C, restore into a *fresh* platform, continue.
    WorkloadRig first(GetParam(), fast_forward);
    (void)first.platform.run(kGoldenCycle);
    const sim::Snapshot at_c = first.platform.save_snapshot();

    WorkloadRig resumed(GetParam(), fast_forward);
    resumed.platform.restore_snapshot(at_c);
    (void)resumed.platform.run(continue_to);
    const auto resumed_bytes = resumed.platform.save_snapshot().serialize();

    EXPECT_EQ(straight_bytes, resumed_bytes)
        << GetParam() << ": "
        << sim::diff_snapshots(sim::Snapshot::deserialize(straight_bytes),
                               sim::Snapshot::deserialize(resumed_bytes));
  }
}

TEST_P(SnapshotEquivalence, TraceAndVcdOfResumedWindowByteIdentical) {
  // Observers attached at cycle C must see identical cycles whether the
  // pre-C prefix was simulated in this process or restored from a
  // snapshot. (An attached observer suppresses fast-forward, so this holds
  // in both configured modes; run one, the stronger ff-on config.)
  const std::uint64_t continue_to = kGoldenCycle + 400;

  auto capture_window = [&](bool restore) {
    WorkloadRig rig(GetParam(), /*fast_forward=*/true);
    if (restore) {
      WorkloadRig warmup(GetParam(), /*fast_forward=*/true);
      (void)warmup.platform.run(kGoldenCycle);
      rig.platform.restore_snapshot(warmup.platform.save_snapshot());
    } else {
      (void)rig.platform.run(kGoldenCycle);
    }
    sim::TimelineTracer tracer;
    tracer.attach(rig.platform);
    (void)rig.platform.run(continue_to);
    const std::string timeline = tracer.timeline(500);

    std::ostringstream vcd_out;
    sim::VcdWriter vcd(vcd_out);
    vcd.attach(rig.platform);  // fresh observer for a second leg
    (void)rig.platform.run(continue_to + 300);
    vcd.finish();
    return std::pair<std::string, std::string>(timeline, vcd_out.str());
  };

  const auto [trace_straight, vcd_straight] = capture_window(false);
  const auto [trace_resumed, vcd_resumed] = capture_window(true);
  EXPECT_EQ(trace_straight, trace_resumed) << GetParam();
  EXPECT_EQ(vcd_straight, vcd_resumed) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Builtins, SnapshotEquivalence,
                         ::testing::ValuesIn(kBuiltins), param_name);

// --- golden snapshots --------------------------------------------------------

std::map<std::string, std::uint64_t> load_golden_hashes() {
  std::map<std::string, std::uint64_t> hashes;
  std::ifstream file(std::string(ULPSYNC_GOLDEN_DIR) + "/hashes.txt");
  EXPECT_TRUE(file.is_open()) << "missing tests/golden/hashes.txt";
  std::string hash_hex, filename;
  while (file >> hash_hex >> filename) {
    const std::size_t slash = filename.find_last_of('/');
    if (slash != std::string::npos) filename = filename.substr(slash + 1);
    hashes[filename] = std::stoull(hash_hex, nullptr, 16);
  }
  return hashes;
}

class GoldenSnapshots : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenSnapshots, CommittedImageAndHashAreStable) {
  const std::string name = GetParam();
  const std::string path =
      std::string(ULPSYNC_GOLDEN_DIR) + "/" + name + ".snap";

  // A freshly captured snapshot must byte-match the committed image (and
  // therefore its committed content hash): the wire format and the
  // simulation are both pinned.
  WorkloadRig rig(name, /*fast_forward=*/true);
  (void)rig.platform.run(kGoldenCycle);
  const sim::Snapshot fresh = rig.platform.save_snapshot();

  const sim::Snapshot committed = sim::read_snapshot_file(path);
  EXPECT_EQ(fresh.serialize(), committed.serialize())
      << name << " drifted from its golden snapshot; if the simulator "
      << "change is intentional, regenerate with: snapshot_tool capture "
      << name << " --cycle 600 --samples 48 (see tests/golden/README.md)\n"
      << sim::diff_snapshots(fresh, committed);

  const auto hashes = load_golden_hashes();
  const auto entry = hashes.find(name + ".snap");
  ASSERT_NE(entry, hashes.end()) << "no hash recorded for " << name;
  EXPECT_EQ(committed.content_hash(), entry->second) << name;
}

TEST_P(GoldenSnapshots, CommittedImageResumesBitExact) {
  const std::string name = GetParam();
  const sim::Snapshot committed = sim::read_snapshot_file(
      std::string(ULPSYNC_GOLDEN_DIR) + "/" + name + ".snap");

  WorkloadRig straight(name, /*fast_forward=*/true);
  (void)straight.platform.run(kGoldenCycle + 500);

  WorkloadRig resumed(name, /*fast_forward=*/true);
  resumed.platform.restore_snapshot(committed);
  (void)resumed.platform.run(kGoldenCycle + 500);

  EXPECT_EQ(straight.platform.save_snapshot().serialize(),
            resumed.platform.save_snapshot().serialize())
      << name;
}

INSTANTIATE_TEST_SUITE_P(Builtins, GoldenSnapshots,
                         ::testing::ValuesIn(kBuiltins), param_name);

// --- awkward capture points --------------------------------------------------

assembler::Program compile(std::string_view source) {
  auto result = assembler::assemble(source);
  EXPECT_TRUE(result.ok()) << result.error_text();
  return std::move(result.program);
}

constexpr std::string_view kBarrierKernel = R"(
    movi r1, 0
  loop:
    addi r1, r1, 1
    sinc #0
    sdec #0
    cmpi r1, 30
    blt  loop
    halt
)";

TEST(Snapshot, MidRmwCaptureResumesBitExact) {
  // Drive tick-by-tick to a cycle where the synchronizer RMW is in flight
  // (a core in kSyncBusy), snapshot there, and verify the restored
  // continuation matches the uninterrupted one.
  sim::Platform reference(sim::PlatformConfig::with_synchronizer());
  reference.load_program(compile(kBarrierKernel));

  bool found_busy = false;
  for (unsigned cycle = 0; cycle < 2000 && !found_busy; ++cycle) {
    reference.tick();
    for (unsigned core = 0; core < reference.config().num_cores; ++core)
      found_busy |= reference.core_status(core) == sim::CoreStatus::kSyncBusy;
  }
  ASSERT_TRUE(found_busy) << "barrier kernel never entered an RMW";

  // The capture really is mid-RMW: the request accepted during the last
  // tick stays in flight until the next cycle's write phase.
  const sim::Snapshot mid_rmw = reference.save_snapshot();
  EXPECT_TRUE(mid_rmw.sync.inflight_active);

  sim::Platform resumed(sim::PlatformConfig::with_synchronizer());
  resumed.load_program(compile(kBarrierKernel));
  resumed.restore_snapshot(mid_rmw);

  for (unsigned step = 0; step < 500; ++step) {
    reference.tick();
    resumed.tick();
  }
  EXPECT_EQ(reference.save_snapshot().serialize(),
            resumed.save_snapshot().serialize());
}

TEST(Snapshot, RestoreRejectsMismatchedPlatform) {
  sim::Platform eight(sim::PlatformConfig::with_synchronizer());
  eight.load_program(compile(kBarrierKernel));
  const sim::Snapshot snap = eight.save_snapshot();

  // Different core count.
  sim::PlatformConfig four_cores = sim::PlatformConfig::with_synchronizer();
  four_cores.num_cores = 4;
  sim::Platform four(four_cores);
  four.load_program(compile(kBarrierKernel));
  EXPECT_THROW(four.restore_snapshot(snap), std::invalid_argument);

  // Same config, different program.
  sim::Platform other(sim::PlatformConfig::with_synchronizer());
  other.load_program(compile("movi r1, 7\nhalt\n"));
  EXPECT_THROW(other.restore_snapshot(snap), std::invalid_argument);

  // The host-side fast-forward knob is explicitly NOT part of the identity.
  sim::PlatformConfig no_ff = sim::PlatformConfig::with_synchronizer();
  no_ff.fast_forward = false;
  sim::Platform naive(no_ff);
  naive.load_program(compile(kBarrierKernel));
  EXPECT_NO_THROW(naive.restore_snapshot(snap));
}

TEST(Snapshot, FileRoundTrip) {
  WorkloadRig rig("sqrt32", /*fast_forward=*/true);
  (void)rig.platform.run(kGoldenCycle);
  sim::Snapshot snap = rig.platform.save_snapshot();
  snap.host_words = {0x1234, 0xdeadbeef};  // harness payload survives I/O

  const std::string path = ::testing::TempDir() + "/roundtrip.snap";
  sim::write_snapshot_file(path, snap);
  const sim::Snapshot loaded = sim::read_snapshot_file(path);
  EXPECT_EQ(snap, loaded);
  EXPECT_EQ(snap.content_hash(), loaded.content_hash());
  std::remove(path.c_str());
}

// --- engine warm-start -------------------------------------------------------

std::vector<RunSpec> horizon_fanout(const std::string& workload,
                                    std::uint64_t checkpoint,
                                    unsigned horizons) {
  std::vector<RunSpec> specs;
  for (unsigned i = 0; i < horizons; ++i) {
    RunSpec spec;
    spec.workload = workload;
    spec.params.samples = kGoldenSamples;
    spec.design = scenario::DesignVariant::synchronized();
    spec.checkpoint_at = checkpoint;
    spec.max_cycles = checkpoint + 500 + i * 400;
    specs.push_back(spec);
  }
  return specs;
}

TEST(EngineWarmStart, WarmSweepRecordsByteIdenticalToColdSweep) {
  const auto specs = horizon_fanout("mrpfltr", kGoldenCycle, 4);

  EngineOptions cold_options;
  cold_options.warm_start = false;
  const Engine cold_engine(Registry::builtins(), cold_options);
  const auto cold = cold_engine.run_timed(specs);

  EngineOptions warm_options;  // warm_start defaults to true
  const Engine warm_engine(Registry::builtins(), warm_options);
  const auto warm = warm_engine.run_timed(specs);

  EXPECT_EQ(scenario::to_csv(cold.records), scenario::to_csv(warm.records));
  EXPECT_EQ(cold.perf.warmups, 0u);
  EXPECT_EQ(warm.perf.warmups, 1u);
  EXPECT_EQ(warm.perf.warm_resumed, specs.size());
  EXPECT_GE(warm.perf.warmup_saved_seconds, 0.0);

  // Parallel warm sweep: still byte-identical (deterministic grouping).
  EngineOptions parallel_options;
  parallel_options.jobs = 4;
  const Engine parallel_engine(Registry::builtins(), parallel_options);
  const auto parallel = parallel_engine.run_timed(specs);
  EXPECT_EQ(scenario::to_csv(warm.records), scenario::to_csv(parallel.records));
  EXPECT_EQ(parallel.perf.warmups, 1u);
}

TEST(EngineWarmStart, ExplicitResumeFromMatchesColdRun) {
  RunSpec spec;
  spec.workload = "sqrt32";
  spec.params.samples = kGoldenSamples;
  spec.design = scenario::DesignVariant::synchronized();
  spec.max_cycles = kGoldenCycle + 1500;

  const Engine engine(Registry::builtins(), EngineOptions{});
  const auto cold = engine.run_one(spec);

  const auto warm_state = engine.capture_warm_state(spec, kGoldenCycle);
  ASSERT_NE(warm_state, nullptr);
  RunSpec resumed_spec = spec;
  resumed_spec.resume_from = warm_state;
  const auto resumed = engine.run_one(resumed_spec);

  EXPECT_EQ(scenario::to_csv({cold}), scenario::to_csv({resumed}));
  EXPECT_EQ(cold.lockstep_fraction, resumed.lockstep_fraction);
}

TEST(EngineWarmStart, NonWarmStartableWorkloadFallsBackToColdRuns) {
  // The streaming monitor keeps host-side state in drive(); the engine must
  // not warm-start it, and results must be unaffected.
  const auto specs = horizon_fanout("streaming", 2000, 3);

  EngineOptions options;
  const Engine engine(Registry::builtins(), options);
  const auto warm = engine.run_timed(specs);
  EXPECT_EQ(warm.perf.warmups, 0u);
  EXPECT_EQ(warm.perf.warm_resumed, 0u);

  EngineOptions cold_options;
  cold_options.warm_start = false;
  const Engine cold_engine(Registry::builtins(), cold_options);
  const auto cold = cold_engine.run_timed(specs);
  EXPECT_EQ(scenario::to_csv(cold.records), scenario::to_csv(warm.records));
}

// --- wide platforms (beyond the synchronizer's 8-core ceiling) --------------

TEST(WidePlatformSnapshots, SixtyFourCoreRoundTripIsBitExact) {
  // 64-core platforms use the extended wire encoding (64-bit policy masks,
  // one per-core counter entry per core): serialize → deserialize →
  // serialize must be a fixed point, and restore → run must match a
  // straight run bit-exactly.
  scenario::WorkloadParams params;
  params.samples = 128;
  params.num_channels = 64;
  const auto workload = Registry::builtins().make("sleepgen", params);
  sim::PlatformConfig config =
      workload->base_config(/*with_synchronizer=*/false);
  config.features = sim::SyncFeatures{false, true, true};

  sim::Platform platform(config);
  platform.load_program(workload->program(false));
  (void)platform.run(400);
  const sim::Snapshot snap = platform.save_snapshot();
  const auto bytes = snap.serialize();
  const sim::Snapshot reparsed = sim::Snapshot::deserialize(bytes);
  EXPECT_EQ(reparsed, snap);
  EXPECT_EQ(reparsed.serialize(), bytes);
  EXPECT_EQ(reparsed.content_hash(), snap.content_hash());

  sim::Platform resumed(config);
  resumed.load_program(workload->program(false));
  resumed.restore_snapshot(reparsed);
  // Wake both (the kernel parks in sleep) and run a full uninstrumented
  // window on the 64-core crossbars.
  platform.interrupt_all();
  resumed.interrupt_all();
  (void)platform.run(20'000);
  (void)resumed.run(20'000);
  EXPECT_EQ(platform.save_snapshot().serialize(),
            resumed.save_snapshot().serialize());
}

TEST(WidePlatformSnapshots, LegacyPerCoreLayoutPreservedBelowEightCores) {
  // Platforms of up to 8 cores keep the historical wire layout (8 per-core
  // entries, 16-bit masks) — the committed goldens depend on it. A 2-core
  // snapshot must round-trip and carry exactly 8 per-core entries' worth
  // of counter payload, which round-tripping implicitly checks.
  auto config = sim::PlatformConfig::with_synchronizer();
  config.num_cores = 2;
  sim::Platform platform(config);
  const auto program = assembler::assemble("  movi r1, 5\n  halt\n");
  ASSERT_TRUE(program.ok());
  platform.load_program(program.program);
  (void)platform.run(50);
  const sim::Snapshot snap = platform.save_snapshot();
  const auto bytes = snap.serialize();
  const sim::Snapshot reparsed = sim::Snapshot::deserialize(bytes);
  EXPECT_EQ(reparsed, snap);
  EXPECT_EQ(reparsed.serialize(), bytes);
}

TEST(EngineWarmStart, MismatchedResumeStateSurfacesAsErrorRecord) {
  const Engine engine(Registry::builtins(), EngineOptions{});
  RunSpec donor;
  donor.workload = "sqrt32";
  donor.params.samples = kGoldenSamples;
  const auto warm_state = engine.capture_warm_state(donor, kGoldenCycle);
  ASSERT_NE(warm_state, nullptr);

  RunSpec wrong;
  wrong.workload = "mrpfltr";  // different program than the warm state's
  wrong.params.samples = kGoldenSamples;
  wrong.resume_from = warm_state;
  const auto record = engine.run_one(wrong);
  EXPECT_EQ(record.status, "error");
  EXPECT_NE(record.verify_error.find("snapshot"), std::string::npos)
      << record.verify_error;
}

}  // namespace
}  // namespace ulpsync
