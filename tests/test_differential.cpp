// Differential testing with randomly generated programs.
//
// A structured generator emits random but well-formed TR16 kernels:
// per-core data, arithmetic, private-bank loads/stores, uniform counted
// loops, and data-dependent diamonds (the divergence source). Each program
// is run three ways — baseline design, synchronized design with the
// automatic instrumentation pass, and synchronized with no instrumentation
// — and all three must produce identical architectural results. This
// checks, across thousands of random control-flow shapes, the core claim
// that synchronization changes *timing only*.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "asm/assembler.h"
#include "core/instrument.h"
#include "sim/platform.h"
#include "util/rng.h"

namespace ulpsync {
namespace {

/// Emits a random program. All loops have compile-time trip counts (the
/// programs always terminate); all DM traffic stays in the core's private
/// bank except an optional shared-slot store at the end.
class ProgramGenerator {
 public:
  explicit ProgramGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    out_.str("");
    label_counter_ = 0;
    out_ << "    csrr r1, #0\n"
            "    addi r4, r1, 2\n"
            "    movi r5, 11\n"
            "    sll  r3, r4, r5\n";  // r3 = private bank base
    // Seed the working registers from per-core memory.
    for (unsigned r = 4; r <= 9; ++r) {
      out_ << "    ldx  r" << r << ", [r3+r1]\n"
           << "    addi r" << r << ", r" << r << ", "
           << rng_.next_in_range(-100, 100) << "\n";
    }
    const unsigned blocks = 3 + static_cast<unsigned>(rng_.next_below(5));
    for (unsigned b = 0; b < blocks; ++b) emit_block(/*depth=*/0);
    // Publish results.
    for (unsigned r = 4; r <= 9; ++r) {
      out_ << "    movi r12, " << (1024 + (r - 4) * 16) << "\n"
           << "    add  r12, r12, r3\n"
           << "    stx  r" << r << ", [r12+r1]\n";
    }
    out_ << "    halt\n";
    return out_.str();
  }

 private:
  unsigned reg() { return 4 + static_cast<unsigned>(rng_.next_below(6)); }

  std::string fresh_label(const char* stem) {
    return std::string(stem) + std::to_string(label_counter_++);
  }

  void emit_alu() {
    static constexpr const char* kOps[] = {"add", "sub", "and", "or",
                                           "xor", "mul"};
    const char* op = kOps[rng_.next_below(6)];
    out_ << "    " << op << " r" << reg() << ", r" << reg() << ", r" << reg()
         << "\n";
  }

  void emit_mem() {
    // Private-bank access at a masked offset: addr = r3 + (rX & 0x1FF).
    const unsigned value = reg();
    const unsigned index = reg();
    out_ << "    andi r13, r" << index << ", 0x1FF\n";
    if (rng_.next_below(2) == 0) {
      out_ << "    ldx  r" << value << ", [r3+r13]\n";
    } else {
      out_ << "    stx  r" << value << ", [r3+r13]\n";
    }
  }

  void emit_diamond(int depth) {
    const std::string else_label = fresh_label("else_");
    const std::string join_label = fresh_label("join_");
    out_ << "    cmpi r" << reg() << ", " << rng_.next_in_range(-50, 50) << "\n";
    static constexpr const char* kBranches[] = {"beq", "bne", "blt",
                                                "bge", "bltu", "bgeu"};
    out_ << "    " << kBranches[rng_.next_below(6)] << " " << else_label << "\n";
    const unsigned then_len = 1 + static_cast<unsigned>(rng_.next_below(3));
    for (unsigned i = 0; i < then_len; ++i) emit_simple(depth);
    out_ << "    bra " << join_label << "\n" << else_label << ":\n";
    const unsigned else_len = static_cast<unsigned>(rng_.next_below(3));
    for (unsigned i = 0; i < else_len; ++i) emit_simple(depth);
    out_ << join_label << ":\n";
  }

  void emit_loop(int depth) {
    const std::string head = fresh_label("head_");
    const unsigned trips = 2 + static_cast<unsigned>(rng_.next_below(6));
    // One counter register per nesting depth (r14 outer, r15 inner).
    const char* counter = depth == 0 ? "r14" : "r15";
    out_ << "    movi " << counter << ", " << trips << "\n" << head << ":\n";
    const unsigned body = 1 + static_cast<unsigned>(rng_.next_below(3));
    for (unsigned i = 0; i < body; ++i) emit_block(depth + 1);
    out_ << "    addi " << counter << ", " << counter << ", -1\n"
         << "    cmpi " << counter << ", 0\n"
         << "    bne  " << head << "\n";
  }

  void emit_simple(int depth) {
    switch (rng_.next_below(3)) {
      case 0: emit_alu(); break;
      case 1: emit_mem(); break;
      default:
        if (depth < 2) emit_diamond(depth + 1);
        else emit_alu();
    }
  }

  void emit_block(int depth) {
    switch (rng_.next_below(4)) {
      case 0: emit_alu(); break;
      case 1: emit_mem(); break;
      case 2: emit_diamond(depth); break;
      default:
        if (depth < 2) emit_loop(depth);
        else emit_alu();
    }
  }

  util::Rng rng_;
  std::ostringstream out_;
  unsigned label_counter_ = 0;
};

void preload_inputs(sim::Platform& platform, std::uint64_t seed) {
  util::Rng rng(seed * 31 + 7);
  for (unsigned c = 0; c < 8; ++c) {
    for (unsigned offset = 0; offset < 1024; ++offset) {
      platform.dm_write((2 + c) * 2048 + offset,
                        static_cast<std::uint16_t>(rng.next_below(0x10000)));
    }
  }
}

std::vector<std::uint16_t> result_snapshot(const sim::Platform& platform) {
  std::vector<std::uint16_t> snapshot;
  for (unsigned c = 0; c < 8; ++c) {
    const auto block = platform.dm_read_block((2 + c) * 2048, 2048);
    snapshot.insert(snapshot.end(), block.begin(), block.end());
  }
  return snapshot;
}

class DifferentialRandomPrograms : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialRandomPrograms, AllDesignsComputeTheSameResults) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  ProgramGenerator generator(seed);
  const std::string source = generator.generate();
  const auto assembled = assembler::assemble(source);
  ASSERT_TRUE(assembled.ok()) << assembled.error_text() << "\n" << source;

  const auto instrumented =
      core::auto_instrument(assembled.program, core::InstrumentOptions{});
  ASSERT_TRUE(instrumented.ok()) << instrumented.error;

  struct Variant {
    const char* name;
    const assembler::Program* program;
    bool with_sync;
  };
  const Variant variants[] = {
      {"baseline/plain", &assembled.program, false},
      {"synchronized/plain", &assembled.program, true},
      {"synchronized/auto-instrumented", &instrumented.program, true},
  };

  std::vector<std::uint16_t> reference;
  std::uint64_t reference_retired = 0;
  for (const auto& variant : variants) {
    sim::Platform platform(variant.with_sync
                               ? sim::PlatformConfig::with_synchronizer()
                               : sim::PlatformConfig::without_synchronizer());
    platform.load_program(*variant.program);
    preload_inputs(platform, seed);
    const auto result = platform.run(20'000'000);
    ASSERT_TRUE(result.ok())
        << variant.name << ": " << result.to_string() << "\n" << source;
    const auto snapshot = result_snapshot(platform);
    const std::uint64_t useful =
        platform.counters().retired_ops - platform.sync_stats().checkins -
        platform.sync_stats().checkouts;
    if (reference.empty()) {
      reference = snapshot;
      reference_retired = useful;
    } else {
      EXPECT_EQ(snapshot, reference) << variant.name << " diverged\n" << source;
      EXPECT_EQ(useful, reference_retired) << variant.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialRandomPrograms,
                         ::testing::Range(1, 41));

TEST(DifferentialRandomPrograms, GeneratorEmitsDivergentControlFlow) {
  // Sanity: the generated corpus must actually contain data-dependent
  // branches (otherwise the suite above proves nothing).
  unsigned with_diamonds = 0;
  for (int seed = 1; seed <= 40; ++seed) {
    ProgramGenerator generator(static_cast<std::uint64_t>(seed));
    if (generator.generate().find("join_") != std::string::npos)
      ++with_diamonds;
  }
  EXPECT_GT(with_diamonds, 30u);
}

}  // namespace
}  // namespace ulpsync
