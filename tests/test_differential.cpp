// Differential testing with randomly generated programs.
//
// A structured generator emits random but well-formed TR16 kernels:
// per-core data, arithmetic, private-bank loads/stores, shared-bank
// contention (read-only broadcast loads and per-core read-modify-write
// sequences on one shared bank), uniform counted loops, top-level
// sleep/interrupt-wake windows, and nested data-dependent diamonds (the
// divergence source). Each program is run three ways — baseline design,
// synchronized design with the automatic instrumentation pass, and
// synchronized with no instrumentation — and all three must produce
// identical architectural results. This checks, across thousands of random
// control-flow shapes, the core claim that synchronization changes *timing
// only*.
//
// Shared traffic is constructed to be timing-independent: shared loads read
// a bank the program never writes, and shared read-modify-write sequences
// target per-core slots of a common bank (bank conflicts, no races). Only
// such traffic can ride along with the three-way equivalence check — a
// racing shared store would make the final memory image depend on
// arbitration timing, which differs across designs by design.
//
// On a mismatch, the harness writes both final platform snapshots and
// their diff to divergence_artifacts/ (override with ULPSYNC_ARTIFACT_DIR)
// so CI can upload the pair; the DivergenceBisection suite additionally
// exercises sim::find_first_divergence, which binary-searches snapshot
// checkpoints to the exact first divergent cycle of two runs that should
// have been bit-identical.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "asm/assembler.h"
#include "core/instrument.h"
#include "sim/platform.h"
#include "sim/snapshot.h"
#include "util/rng.h"

namespace ulpsync {
namespace {

/// DM layout of the generated programs (bank = addr / 2048):
///   bank 0      — sync checkpoint words (instrumented variant only)
///   bank 1      — shared read-only constants (broadcast-load target)
///   banks 2..9  — per-core private bank of core c at (2+c)*2048
///   bank 10     — shared contended bank: per-core RMW slots at
///                 kSharedRmwBase + 8*k + core
constexpr std::uint32_t kSharedConstBase = 2048;
constexpr std::uint32_t kSharedRmwBase = 10 * 2048;

/// Emits a random program. All loops have compile-time trip counts (the
/// programs always terminate); memory traffic follows the layout above, so
/// results are identical across designs regardless of timing.
class ProgramGenerator {
 public:
  explicit ProgramGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    out_.str("");
    label_counter_ = 0;
    out_ << "    csrr r1, #0\n"
            "    addi r4, r1, 2\n"
            "    movi r5, 11\n"
            "    sll  r3, r4, r5\n";  // r3 = private bank base
    // Seed the working registers from per-core memory.
    for (unsigned r = 4; r <= 9; ++r) {
      out_ << "    ldx  r" << r << ", [r3+r1]\n"
           << "    addi r" << r << ", r" << r << ", "
           << rng_.next_in_range(-100, 100) << "\n";
    }
    const unsigned blocks = 3 + static_cast<unsigned>(rng_.next_below(5));
    for (unsigned b = 0; b < blocks; ++b) {
      emit_block(/*depth=*/0);
      // Top-level duty-cycle window: every core executes the same sleep
      // sequence (uniform code path), so the platform periodically reaches
      // all-asleep and the host drive loop wakes it by interrupt.
      if (rng_.next_below(4) == 0) out_ << "    sleep\n";
    }
    // Publish results.
    for (unsigned r = 4; r <= 9; ++r) {
      out_ << "    movi r12, " << (1024 + (r - 4) * 16) << "\n"
           << "    add  r12, r12, r3\n"
           << "    stx  r" << r << ", [r12+r1]\n";
    }
    out_ << "    halt\n";
    return out_.str();
  }

 private:
  unsigned reg() { return 4 + static_cast<unsigned>(rng_.next_below(6)); }

  std::string fresh_label(const char* stem) {
    return std::string(stem) + std::to_string(label_counter_++);
  }

  void emit_alu() {
    static constexpr const char* kOps[] = {"add", "sub", "and", "or",
                                           "xor", "mul"};
    const char* op = kOps[rng_.next_below(6)];
    out_ << "    " << op << " r" << reg() << ", r" << reg() << ", r" << reg()
         << "\n";
  }

  void emit_mem() {
    // Private-bank access at a masked offset: addr = r3 + (rX & 0x1FF).
    const unsigned value = reg();
    const unsigned index = reg();
    out_ << "    andi r13, r" << index << ", 0x1FF\n";
    if (rng_.next_below(2) == 0) {
      out_ << "    ldx  r" << value << ", [r3+r13]\n";
    } else {
      out_ << "    stx  r" << value << ", [r3+r13]\n";
    }
  }

  void emit_shared_load() {
    // Broadcast-load contention: every core reads the shared read-only
    // constant bank at a data-dependent offset. Cores in lockstep with
    // equal indices broadcast; diverged cores conflict on the bank.
    out_ << "    andi r10, r" << reg() << ", 0x1FF\n"
         << "    movi r11, " << kSharedConstBase << "\n"
         << "    add  r11, r11, r10\n"
         << "    ldx  r" << reg() << ", [r11+r0]\n";
  }

  void emit_shared_rmw() {
    // Read-modify-write sequence on this core's slot of the shared
    // contended bank: all cores hammer one bank (conflict serialization,
    // policy groups) but never one another's words (no races).
    static constexpr const char* kOps[] = {"add", "xor", "sub"};
    const unsigned slot = static_cast<unsigned>(rng_.next_below(8));
    out_ << "    movi r11, " << (kSharedRmwBase + 8 * slot) << "\n"
         << "    add  r11, r11, r1\n"
         << "    ldx  r10, [r11+r0]\n"
         << "    " << kOps[rng_.next_below(3)] << " r10, r10, r" << reg() << "\n"
         << "    stx  r10, [r11+r0]\n";
  }

  void emit_diamond(int depth) {
    const std::string else_label = fresh_label("else_");
    const std::string join_label = fresh_label("join_");
    out_ << "    cmpi r" << reg() << ", " << rng_.next_in_range(-50, 50) << "\n";
    static constexpr const char* kBranches[] = {"beq", "bne", "blt",
                                                "bge", "bltu", "bgeu"};
    out_ << "    " << kBranches[rng_.next_below(6)] << " " << else_label << "\n";
    const unsigned then_len = 1 + static_cast<unsigned>(rng_.next_below(3));
    for (unsigned i = 0; i < then_len; ++i) emit_simple(depth);
    out_ << "    bra " << join_label << "\n" << else_label << ":\n";
    const unsigned else_len = static_cast<unsigned>(rng_.next_below(3));
    for (unsigned i = 0; i < else_len; ++i) emit_simple(depth);
    out_ << join_label << ":\n";
  }

  void emit_loop(int depth) {
    const std::string head = fresh_label("head_");
    const unsigned trips = 2 + static_cast<unsigned>(rng_.next_below(6));
    // One counter register per nesting depth (r14 outer, r15 inner).
    const char* counter = depth == 0 ? "r14" : "r15";
    out_ << "    movi " << counter << ", " << trips << "\n" << head << ":\n";
    const unsigned body = 1 + static_cast<unsigned>(rng_.next_below(3));
    for (unsigned i = 0; i < body; ++i) emit_block(depth + 1);
    out_ << "    addi " << counter << ", " << counter << ", -1\n"
         << "    cmpi " << counter << ", 0\n"
         << "    bne  " << head << "\n";
  }

  void emit_straight_chain() {
    // A long straight-line ALU run (4..20 instructions, no branches, no
    // memory): inside diamonds and loops these runs start at diverged PCs,
    // so they exercise the burst path's disjoint-bank case and the slim
    // fetch-regime executor's conflict serialization — interleaved with
    // the IM-bank-conflicting fetch patterns the divergent control flow
    // creates.
    const unsigned length = 4 + static_cast<unsigned>(rng_.next_below(17));
    for (unsigned i = 0; i < length; ++i) {
      static constexpr const char* kOps[] = {"add", "sub", "xor", "and", "or"};
      switch (rng_.next_below(3)) {
        case 0:
          out_ << "    " << kOps[rng_.next_below(5)] << " r" << reg() << ", r"
               << reg() << ", r" << reg() << "\n";
          break;
        case 1:
          out_ << "    addi r" << reg() << ", r" << reg() << ", "
               << rng_.next_in_range(-64, 64) << "\n";
          break;
        default:
          out_ << "    slli r" << reg() << ", r" << reg() << ", "
               << rng_.next_below(4) << "\n";
          break;
      }
    }
  }

  void emit_simple(int depth) {
    switch (rng_.next_below(6)) {
      case 0: emit_alu(); break;
      case 1: emit_mem(); break;
      case 2: emit_shared_load(); break;
      case 3: emit_shared_rmw(); break;
      case 4: emit_straight_chain(); break;
      default:
        // Nested data-dependent diamonds, up to three levels deep.
        if (depth < 3) emit_diamond(depth + 1);
        else emit_alu();
    }
  }

  void emit_block(int depth) {
    switch (rng_.next_below(8)) {
      case 0: emit_alu(); break;
      case 1: emit_mem(); break;
      case 2: emit_shared_load(); break;
      case 3: emit_shared_rmw(); break;
      case 4:
      case 5: emit_diamond(depth); break;  // double weight: the divergence source
      case 6: emit_straight_chain(); break;
      default:
        if (depth < 2) emit_loop(depth);
        else emit_alu();
    }
  }

  util::Rng rng_;
  std::ostringstream out_;
  unsigned label_counter_ = 0;
};

void preload_inputs(sim::Platform& platform, std::uint64_t seed) {
  util::Rng rng(seed * 31 + 7);
  // Shared read-only constants (identical for every variant of a seed).
  for (unsigned offset = 0; offset < 512; ++offset) {
    platform.dm_write(kSharedConstBase + offset,
                      static_cast<std::uint16_t>(rng.next_below(0x10000)));
  }
  // Per-core private banks.
  for (unsigned c = 0; c < 8; ++c) {
    for (unsigned offset = 0; offset < 1024; ++offset) {
      platform.dm_write((2 + c) * 2048 + offset,
                        static_cast<std::uint16_t>(rng.next_below(0x10000)));
    }
  }
}

std::vector<std::uint16_t> result_snapshot(const sim::Platform& platform) {
  std::vector<std::uint16_t> snapshot;
  for (unsigned c = 0; c < 8; ++c) {
    const auto block = platform.dm_read_block((2 + c) * 2048, 2048);
    snapshot.insert(snapshot.end(), block.begin(), block.end());
  }
  // The shared contended bank holds per-core RMW results.
  const auto shared = platform.dm_read_block(kSharedRmwBase, 2048);
  snapshot.insert(snapshot.end(), shared.begin(), shared.end());
  return snapshot;
}

/// Runs to completion through the host wake loop: generated programs
/// contain top-level `sleep` windows, so an all-asleep stop is a request
/// for the next external wake-up, not a failure. Bounded: every wake-up
/// lets at least one core retire its sleep, so the loop terminates.
sim::RunResult run_with_wakeups(sim::Platform& platform, std::uint64_t budget) {
  sim::RunResult result = platform.run(budget);
  for (unsigned window = 0; window < 100'000; ++window) {
    if (result.status != sim::RunResult::Status::kAllAsleep) break;
    platform.interrupt_all();
    result = platform.run(budget);
  }
  return result;
}

/// Where divergence artifacts land (CI uploads this directory on failure).
std::filesystem::path artifact_dir() {
  const char* override_dir = std::getenv("ULPSYNC_ARTIFACT_DIR");
  return override_dir != nullptr ? std::filesystem::path(override_dir)
                                 : std::filesystem::path("divergence_artifacts");
}

void dump_divergence_artifacts(std::uint64_t seed, const std::string& variant,
                               const sim::Snapshot& reference,
                               const sim::Snapshot& diverged) {
  const std::filesystem::path dir = artifact_dir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return;  // artifact dumping must never mask the test failure
  std::string tag = variant;
  for (auto& c : tag)
    if (c == '/' || c == ' ') c = '_';
  const std::string stem = "seed" + std::to_string(seed) + "_" + tag;
  try {
    sim::write_snapshot_file((dir / (stem + "_reference.snap")).string(),
                             reference);
    sim::write_snapshot_file((dir / (stem + "_diverged.snap")).string(),
                             diverged);
    std::ofstream delta(dir / (stem + "_delta.txt"));
    delta << sim::diff_snapshots(reference, diverged, 64);
  } catch (const std::exception&) {
    // Best effort only.
  }
}

class DifferentialRandomPrograms : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialRandomPrograms, AllDesignsComputeTheSameResults) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  ProgramGenerator generator(seed);
  const std::string source = generator.generate();
  const auto assembled = assembler::assemble(source);
  ASSERT_TRUE(assembled.ok()) << assembled.error_text() << "\n" << source;

  const auto instrumented =
      core::auto_instrument(assembled.program, core::InstrumentOptions{});
  ASSERT_TRUE(instrumented.ok()) << instrumented.error;

  struct Variant {
    const char* name;
    const assembler::Program* program;
    bool with_sync;
  };
  const Variant variants[] = {
      {"baseline/plain", &assembled.program, false},
      {"synchronized/plain", &assembled.program, true},
      {"synchronized/auto-instrumented", &instrumented.program, true},
  };

  std::vector<std::uint16_t> reference;
  std::uint64_t reference_retired = 0;
  sim::Snapshot reference_state;
  for (const auto& variant : variants) {
    sim::Platform platform(variant.with_sync
                               ? sim::PlatformConfig::with_synchronizer()
                               : sim::PlatformConfig::without_synchronizer());
    platform.load_program(*variant.program);
    preload_inputs(platform, seed);
    const auto result = run_with_wakeups(platform, 20'000'000);
    ASSERT_TRUE(result.ok())
        << variant.name << ": " << result.to_string() << "\n" << source;
    const auto snapshot = result_snapshot(platform);
    const std::uint64_t useful =
        platform.counters().retired_ops - platform.sync_stats().checkins -
        platform.sync_stats().checkouts;
    if (reference.empty()) {
      reference = snapshot;
      reference_retired = useful;
      reference_state = platform.save_snapshot();
    } else {
      if (snapshot != reference) {
        dump_divergence_artifacts(seed, variant.name, reference_state,
                                  platform.save_snapshot());
      }
      EXPECT_EQ(snapshot, reference) << variant.name << " diverged\n" << source;
      EXPECT_EQ(useful, reference_retired) << variant.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialRandomPrograms,
                         ::testing::Range(1, 41));

TEST(DifferentialRandomPrograms, GeneratorEmitsDivergentControlFlow) {
  // Sanity: the generated corpus must actually contain data-dependent
  // branches (otherwise the suite above proves nothing).
  unsigned with_diamonds = 0;
  for (int seed = 1; seed <= 40; ++seed) {
    ProgramGenerator generator(static_cast<std::uint64_t>(seed));
    if (generator.generate().find("join_") != std::string::npos)
      ++with_diamonds;
  }
  EXPECT_GT(with_diamonds, 30u);
}

TEST(DifferentialRandomPrograms, GeneratorEmitsAllContentionShapes) {
  // Ditto for the contention shapes this suite claims to cover: shared
  // broadcast loads, shared-bank RMW sequences, and sleep windows must all
  // appear across the corpus.
  unsigned with_shared_load = 0;
  unsigned with_shared_rmw = 0;
  unsigned with_sleep = 0;
  // Markers unique to each emitter (an address literal alone would be
  // ambiguous: the const base 2048 is a string prefix of the RMW base
  // 20480).
  const std::string shared_load_marker = "add  r11, r11, r10";
  const std::string shared_rmw_marker = "ldx  r10, [r11+r0]";
  for (int seed = 1; seed <= 40; ++seed) {
    ProgramGenerator generator(static_cast<std::uint64_t>(seed));
    const std::string source = generator.generate();
    if (source.find(shared_load_marker) != std::string::npos) ++with_shared_load;
    if (source.find(shared_rmw_marker) != std::string::npos) ++with_shared_rmw;
    if (source.find("sleep") != std::string::npos) ++with_sleep;
  }
  EXPECT_GT(with_shared_load, 20u);
  EXPECT_GT(with_shared_rmw, 10u);
  EXPECT_GT(with_sleep, 10u);
}

// --- divergence bisection ----------------------------------------------------

constexpr std::string_view kFaultProbeKernel = R"(
    csrr r1, #0
    movi r2, 40
    movi r11, 2100       ; shared constant slot (bank 1)
  loop:
    ldx  r5, [r11+r0]
    add  r6, r6, r5
    addi r2, r2, -1
    cmpi r2, 0
    bne  loop
    addi r4, r1, 2
    movi r5, 11
    sll  r3, r4, r5
    stx  r6, [r3+r0]
    halt
)";

assembler::Program compile(std::string_view source) {
  auto result = assembler::assemble(source);
  EXPECT_TRUE(result.ok()) << result.error_text();
  return std::move(result.program);
}

/// (Platform is not movable — its crossbar/synchronizer members hold
/// references into the object — so probes are set up in place.)
void setup_probe(sim::Platform& platform) {
  platform.load_program(compile(kFaultProbeKernel));
  platform.dm_write(2100, 5);
}

TEST(DivergenceBisection, IdenticalRunsNeverDiverge) {
  sim::Platform a(sim::PlatformConfig::with_synchronizer());
  sim::Platform b(sim::PlatformConfig::with_synchronizer());
  setup_probe(a);
  setup_probe(b);
  const auto report = sim::find_first_divergence(a, b, 5'000);
  EXPECT_FALSE(report.diverged) << report.delta;
}

TEST(DivergenceBisection, ReportsInjectionCycleInFullStateScope) {
  // Inject the fault mid-run: full-state comparison (DM included) must
  // pinpoint the injection cycle itself.
  constexpr std::uint64_t kInjectAt = 37;
  sim::Platform a(sim::PlatformConfig::with_synchronizer());
  sim::Platform b(sim::PlatformConfig::with_synchronizer());
  setup_probe(a);
  setup_probe(b);
  while (a.counters().cycles < kInjectAt) a.tick();
  while (b.counters().cycles < kInjectAt) b.tick();
  b.dm_write(2100, 999);

  const auto report = sim::find_first_divergence(
      a, b, 10'000, sim::DivergenceScope::kFullState, /*stride=*/64);
  ASSERT_TRUE(report.diverged);
  EXPECT_EQ(report.first_divergent_cycle, kInjectAt);
  EXPECT_NE(report.delta.find("dm[2100]"), std::string::npos) << report.delta;
}

TEST(DivergenceBisection, CoreScopeReportsWhenTheFaultReachesACore) {
  // With DM excluded, divergence starts only when a core's load of the
  // corrupted word retires — strictly after the injection.
  constexpr std::uint64_t kInjectAt = 37;
  auto inject = [&](sim::Platform& platform) {
    while (platform.counters().cycles < kInjectAt) platform.tick();
  };
  sim::Platform a(sim::PlatformConfig::with_synchronizer());
  sim::Platform b(sim::PlatformConfig::with_synchronizer());
  setup_probe(a);
  setup_probe(b);
  inject(a);
  inject(b);
  b.dm_write(2100, 999);

  const auto report = sim::find_first_divergence(
      a, b, 10'000, sim::DivergenceScope::kCoreState, /*stride=*/64);
  ASSERT_TRUE(report.diverged);
  EXPECT_GT(report.first_divergent_cycle, kInjectAt);
  EXPECT_NE(report.delta.find("core"), std::string::npos) << report.delta;

  // Independently verify minimality: fresh platforms with the same fault
  // agree on core state one cycle earlier and differ at the reported cycle.
  sim::Platform c(sim::PlatformConfig::with_synchronizer());
  sim::Platform d(sim::PlatformConfig::with_synchronizer());
  setup_probe(c);
  setup_probe(d);
  inject(c);
  inject(d);
  d.dm_write(2100, 999);
  while (c.counters().cycles < report.first_divergent_cycle - 1) {
    c.tick();
    d.tick();
  }
  EXPECT_TRUE(sim::snapshots_equal(c.save_snapshot(), d.save_snapshot(),
                                   sim::DivergenceScope::kCoreState));
  c.tick();
  d.tick();
  EXPECT_FALSE(sim::snapshots_equal(c.save_snapshot(), d.save_snapshot(),
                                    sim::DivergenceScope::kCoreState));
}

TEST(DivergenceBisection, GeneratedProgramBurstModesAreBitIdentical) {
  // Straight-line bursts and the slim fetch-regime path must never change
  // any state, at any cycle, on any control-flow shape. (tick() is the
  // bisector's stepper, so this pins the run()-level fast paths by
  // re-simulating and comparing full snapshots.)
  for (const int seed : {3, 11, 23}) {
    ProgramGenerator generator(static_cast<std::uint64_t>(seed));
    const auto program = compile(generator.generate());
    auto config_on = sim::PlatformConfig::with_synchronizer();
    auto config_off = config_on;
    config_off.burst = false;
    config_off.fast_forward = false;
    sim::Platform a(config_on);
    sim::Platform b(config_off);
    a.load_program(program);
    b.load_program(program);
    preload_inputs(a, static_cast<std::uint64_t>(seed));
    preload_inputs(b, static_cast<std::uint64_t>(seed));
    // Drive both through run() (where the fast paths live) in interleaved
    // windows, comparing the full snapshot at every boundary.
    for (int window = 0; window < 40; ++window) {
      const std::uint64_t target = a.counters().cycles + 1000;
      const auto ra = a.run(target);
      const auto rb = b.run(target);
      ASSERT_EQ(ra, rb) << "seed " << seed << " window " << window;
      ASSERT_TRUE(sim::snapshots_equal(a.save_snapshot(), b.save_snapshot(),
                                       sim::DivergenceScope::kFullState))
          << "seed " << seed << " window " << window << "\n"
          << sim::diff_snapshots(a.save_snapshot(), b.save_snapshot());
      if (ra.status == sim::RunResult::Status::kAllAsleep) {
        a.interrupt_all();
        b.interrupt_all();
      } else if (ra.status != sim::RunResult::Status::kMaxCycles) {
        break;  // halted or trapped — both equally, per the asserts above
      }
    }
  }
}

TEST(DivergenceBisection, RoundRobinPointerIsModularAcrossSnapshots) {
  // The round-robin pointer is semantically modular in num_cores: a
  // snapshot whose raw rr accumulator is bumped by any multiple of
  // num_cores must continue bit-identically. Run on 3 cores — a core count
  // that does not divide 2^32, where a non-normalized accumulator would
  // drift at the unsigned wrap — over a horizon long enough to cross many
  // fast-forward batches.
  ProgramGenerator generator(17);
  const auto program = compile(generator.generate());
  auto config = sim::PlatformConfig::with_synchronizer();
  config.num_cores = 3;
  config.arbitration = sim::ArbitrationPolicy::kRoundRobin;
  sim::Platform a(config);
  sim::Platform b(config);
  a.load_program(program);
  b.load_program(program);
  preload_inputs(a, 17);
  preload_inputs(b, 17);
  (void)run_with_wakeups(a, 5'000);
  sim::Snapshot snap = a.save_snapshot();
  // Equivalent rr state: bump the raw accumulator by k * num_cores (and by
  // a 2^32-straddling amount of the same residue).
  snap.rr_pointer += 7 * config.num_cores;
  b.restore_snapshot(snap);
  const auto ra = run_with_wakeups(a, 20'000'000);
  const auto rb = run_with_wakeups(b, 20'000'000);
  EXPECT_EQ(ra, rb);
  EXPECT_TRUE(sim::snapshots_equal(a.save_snapshot(), b.save_snapshot(),
                                   sim::DivergenceScope::kFullState))
      << sim::diff_snapshots(a.save_snapshot(), b.save_snapshot());

  // Horizon past the 2^32-cycle unsigned wrap (crafted: simulating there
  // is infeasible): a snapshot restored at such a cycle count must save
  // back with its arbitration phase intact. 2^32 % 3 == 1, so a truncated
  // cycle count alone would mis-restore the pointer by one slot.
  {
    sim::Snapshot far_future = a.save_snapshot();
    const std::uint64_t wrapped = (1ull << 32) + far_future.counters.cycles;
    far_future.counters.cycles = wrapped;
    // The true modular pointer of a platform that RAN to `wrapped` cycles:
    // its residue differs from the truncated cycle count's (2^32 % 3 == 1),
    // which is exactly the case a naive cycles-derived wire value loses.
    const auto phase = static_cast<unsigned>(wrapped % config.num_cores);
    far_future.rr_pointer =
        static_cast<unsigned>(far_future.counters.cycles);  // legacy raw form
    ASSERT_NE(far_future.rr_pointer % config.num_cores, phase)
        << "test setup: residues must differ for this to prove anything";
    far_future.rr_pointer += phase + config.num_cores -
                             far_future.rr_pointer % config.num_cores;
    ASSERT_EQ(far_future.rr_pointer % config.num_cores, phase);
    sim::Platform w(config);
    w.load_program(program);
    w.restore_snapshot(far_future);
    const sim::Snapshot resaved = w.save_snapshot();
    EXPECT_EQ(resaved.counters.cycles, wrapped);
    EXPECT_EQ(resaved.rr_pointer % config.num_cores, phase)
        << "round-robin phase lost across the 2^32-cycle wrap";
  }

  // Long-horizon differential on the same non-power-of-two core count:
  // fast paths on vs the naive loop, across sleep/wake windows.
  auto config_naive = config;
  config_naive.fast_forward = false;
  config_naive.burst = false;
  sim::Platform c(config);
  sim::Platform d(config_naive);
  c.load_program(program);
  d.load_program(program);
  preload_inputs(c, 17);
  preload_inputs(d, 17);
  const auto rc = run_with_wakeups(c, 20'000'000);
  const auto rd = run_with_wakeups(d, 20'000'000);
  EXPECT_EQ(rc, rd);
  EXPECT_TRUE(sim::snapshots_equal(c.save_snapshot(), d.save_snapshot(),
                                   sim::DivergenceScope::kFullState))
      << sim::diff_snapshots(c.save_snapshot(), d.save_snapshot());
}

TEST(DivergenceBisection, GeneratedProgramFastForwardModesAreBitIdentical) {
  // The bisector doubles as a regression harness for host-side
  // optimizations: a generated program simulated with fast-forward on and
  // off must never diverge in any state, at any cycle.
  ProgramGenerator generator(7);
  const auto program = compile(generator.generate());
  auto config_on = sim::PlatformConfig::with_synchronizer();
  auto config_off = config_on;
  config_off.fast_forward = false;
  sim::Platform a(config_on);
  sim::Platform b(config_off);
  a.load_program(program);
  b.load_program(program);
  preload_inputs(a, 7);
  preload_inputs(b, 7);
  const auto report = sim::find_first_divergence(a, b, 50'000);
  EXPECT_FALSE(report.diverged)
      << "cycle " << report.first_divergent_cycle << "\n" << report.delta;
}

}  // namespace
}  // namespace ulpsync
