// Tests for the timeline tracer.

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "sim/platform.h"
#include "sim/trace.h"

namespace ulpsync::sim {
namespace {

assembler::Program compile(std::string_view source) {
  auto result = assembler::assemble(source);
  EXPECT_TRUE(result.ok()) << result.error_text();
  return std::move(result.program);
}

TEST(TimelineTracer, SymbolsCoverEveryStatus) {
  EXPECT_EQ(TimelineTracer::symbol(CoreStatus::kReady), 'E');
  EXPECT_EQ(TimelineTracer::symbol(CoreStatus::kSleeping), 'z');
  EXPECT_EQ(TimelineTracer::symbol(CoreStatus::kHalted), 'H');
  EXPECT_EQ(TimelineTracer::symbol(CoreStatus::kSyncBusy), '#');
  EXPECT_EQ(TimelineTracer::symbol(CoreStatus::kMemWait), 'm');
}

TEST(TimelineTracer, RecordsEveryCycleUpToCapacity) {
  auto config = PlatformConfig::with_synchronizer();
  config.start_stagger_cycles = 0;
  Platform platform(config);
  platform.load_program(compile("spin: bra spin\n"));
  TimelineTracer tracer(32);
  tracer.attach(platform);
  (void)platform.run(100);
  EXPECT_EQ(tracer.recorded_cycles(), 32u) << "ring buffer caps history";
}

TEST(TimelineTracer, TimelineShowsLanesAndLegend) {
  auto config = PlatformConfig::with_synchronizer();
  config.start_stagger_cycles = 0;
  config.num_cores = 2;
  Platform platform(config);
  platform.load_program(compile(R"(
      movi r1, 1
      sinc #0
      sdec #0
      halt
  )"));
  TimelineTracer tracer;
  tracer.attach(platform);
  ASSERT_TRUE(platform.run(100).ok());
  const std::string timeline = tracer.timeline();
  EXPECT_NE(timeline.find("core0"), std::string::npos);
  EXPECT_NE(timeline.find("core1"), std::string::npos);
  EXPECT_NE(timeline.find('#'), std::string::npos) << "sync activity visible";
  EXPECT_NE(timeline.find('H'), std::string::npos) << "halt visible";
  EXPECT_NE(timeline.find("E execute"), std::string::npos);
}

TEST(TimelineTracer, WindowDumpsStatusAndPc) {
  auto config = PlatformConfig::with_synchronizer();
  config.num_cores = 1;
  config.start_stagger_cycles = 0;
  Platform platform(config);
  platform.load_program(compile("movi r1, 1\nhalt\n"));
  TimelineTracer tracer;
  tracer.attach(platform);
  ASSERT_TRUE(platform.run(100).ok());
  const std::string window = tracer.window(4);
  EXPECT_NE(window.find("cycle"), std::string::npos);
  EXPECT_NE(window.find("halted"), std::string::npos);
}

TEST(TimelineTracer, EmptyTraceRendersGracefully) {
  TimelineTracer tracer;
  EXPECT_NE(tracer.timeline().find("no cycles"), std::string::npos);
  EXPECT_EQ(tracer.window(), "");
  tracer.clear();
  EXPECT_EQ(tracer.recorded_cycles(), 0u);
}

}  // namespace
}  // namespace ulpsync::sim
