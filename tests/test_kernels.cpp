// Integration tests: the three TR16 benchmark kernels, on both platform
// designs, verified bit-for-bit against the golden C++ references, plus the
// cross-design invariants the paper's technique must satisfy.

#include <gtest/gtest.h>

#include "core/lockstep.h"
#include "kernels/benchmark.h"
#include "kernels/memmap.h"
#include "ecg/sqrt32.h"
#include "kernels/sources.h"

namespace ulpsync::kernels {
namespace {

struct KernelCase {
  BenchmarkKind kind;
  unsigned samples;
  std::uint64_t seed;
};

void PrintTo(const KernelCase& c, std::ostream* os) {
  *os << benchmark_name(c.kind) << "/N" << c.samples << "/seed" << c.seed;
}

class KernelMatrix : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelMatrix, BothDesignsMatchGolden) {
  const auto& param = GetParam();
  BenchmarkParams params;
  params.samples = param.samples;
  params.generator.seed = param.seed;
  Benchmark benchmark(param.kind, params);

  const auto baseline = run_benchmark(benchmark, false);
  ASSERT_TRUE(baseline.result.ok()) << baseline.result.to_string();
  EXPECT_EQ(baseline.verify_error, "");

  const auto synced = run_benchmark(benchmark, true);
  ASSERT_TRUE(synced.result.ok()) << synced.result.to_string();
  EXPECT_EQ(synced.verify_error, "");

  // Synchronization must not change the computation.
  EXPECT_EQ(baseline.useful_ops, synced.useful_ops);
  // It must restore lockstep: strictly fewer cycles and fewer IM accesses.
  EXPECT_LT(synced.counters.cycles, baseline.counters.cycles);
  EXPECT_LT(synced.counters.im_bank_accesses,
            baseline.counters.im_bank_accesses);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, KernelMatrix,
    ::testing::Values(KernelCase{BenchmarkKind::kMrpfltr, 64, 42},
                      KernelCase{BenchmarkKind::kMrpfltr, 96, 7},
                      KernelCase{BenchmarkKind::kSqrt32, 64, 42},
                      KernelCase{BenchmarkKind::kSqrt32, 96, 7},
                      KernelCase{BenchmarkKind::kSqrt32, 48, 1234},
                      KernelCase{BenchmarkKind::kMrpdln, 128, 42},
                      KernelCase{BenchmarkKind::kMrpdln, 192, 7}));

TEST(Kernels, SourcesAssembleInBothVariants) {
  for (auto kind : kAllBenchmarks) {
    BenchmarkParams params;
    params.samples = 16;
    EXPECT_NO_THROW({ Benchmark benchmark(kind, params); })
        << benchmark_name(kind);
  }
}

TEST(Kernels, InstrumentedVariantContainsSyncOps) {
  for (auto kind : kAllBenchmarks) {
    BenchmarkParams params;
    params.samples = 16;
    Benchmark benchmark(kind, params);
    auto count_sync = [](const assembler::Program& program) {
      unsigned count = 0;
      for (const auto& instr : program.code) {
        count += (instr.op == isa::Opcode::kSinc || instr.op == isa::Opcode::kSdec);
      }
      return count;
    };
    EXPECT_EQ(count_sync(benchmark.program(false)), 0u) << benchmark_name(kind);
    EXPECT_GE(count_sync(benchmark.program(true)), 2u) << benchmark_name(kind);
  }
}

TEST(Kernels, PreprocessorKeepsOrStripsMarkedLines) {
  const std::string_view source = "  add r1, r2, r3\n  !sync sinc #0\nhalt\n";
  const auto plain = preprocess_sync_markers(source, false);
  EXPECT_EQ(plain.find("sinc"), std::string::npos);
  const auto instrumented = preprocess_sync_markers(source, true);
  EXPECT_NE(instrumented.find("  sinc #0"), std::string::npos);
  EXPECT_EQ(instrumented.find("!sync"), std::string::npos);
}

TEST(Kernels, SyncOpsBalanceExactly) {
  // Every SINC must be matched by an SDEC execution: the synchronizer
  // statistics count the dynamic totals.
  BenchmarkParams params;
  params.samples = 48;
  for (auto kind : kAllBenchmarks) {
    Benchmark benchmark(kind, params);
    const auto run = run_benchmark(benchmark, true);
    ASSERT_TRUE(run.result.ok());
    EXPECT_EQ(run.sync_stats.checkins, run.sync_stats.checkouts)
        << benchmark_name(kind);
    EXPECT_GT(run.sync_stats.wakeup_events, 0u);
  }
}

TEST(Kernels, LockstepResidencyImprovesWithSynchronizer) {
  BenchmarkParams params;
  params.samples = 48;
  for (auto kind : kAllBenchmarks) {
    Benchmark benchmark(kind, params);
    double fraction[2];
    for (const bool with_sync : {false, true}) {
      sim::Platform platform(benchmark.platform_config(with_sync));
      platform.load_program(benchmark.program(with_sync));
      benchmark.load_inputs(platform);
      core::LockstepAnalyzer analyzer;
      analyzer.attach(platform);
      ASSERT_TRUE(platform.run(50'000'000).ok());
      fraction[with_sync] = analyzer.metrics().lockstep_fraction();
    }
    EXPECT_GT(fraction[1], 2.0 * fraction[0]) << benchmark_name(kind);
  }
}

TEST(Kernels, BroadcastFetchFractionHighWithSync) {
  BenchmarkParams params;
  params.samples = 48;
  Benchmark benchmark(BenchmarkKind::kMrpfltr, params);
  const auto run = run_benchmark(benchmark, true);
  ASSERT_TRUE(run.result.ok());
  EXPECT_GT(run.counters.broadcast_fetch_fraction(), 0.5);
}

TEST(Kernels, MrpdlnHonorsPerChannelThresholds) {
  BenchmarkParams params;
  params.samples = 192;
  params.per_core_threshold_delta = {0, 50, -50, 100, 0, 25, -25, 200};
  Benchmark benchmark(BenchmarkKind::kMrpdln, params);
  const auto run = run_benchmark(benchmark, true);
  ASSERT_TRUE(run.result.ok());
  EXPECT_EQ(run.verify_error, "") << run.verify_error;
}

TEST(Kernels, MrpdlnWritesSharedResultSlots) {
  BenchmarkParams params;
  params.samples = 192;
  Benchmark benchmark(BenchmarkKind::kMrpdln, params);
  sim::Platform platform(benchmark.platform_config(true));
  platform.load_program(benchmark.program(true));
  benchmark.load_inputs(platform);
  ASSERT_TRUE(platform.run(50'000'000).ok());
  // The per-core result slots land in one bank -> the enhanced D-Xbar
  // policy must have fired at least for those stores.
  EXPECT_GT(platform.counters().policy_hold_events, 0u);
}

TEST(Kernels, FewerChannelsFewerCores) {
  for (unsigned channels : {1u, 2u, 4u}) {
    BenchmarkParams params;
    params.samples = 32;
    params.num_channels = channels;
    Benchmark benchmark(BenchmarkKind::kSqrt32, params);
    const auto run = run_benchmark(benchmark, true);
    ASSERT_TRUE(run.result.ok()) << channels;
    EXPECT_EQ(run.verify_error, "") << channels;
  }
}

TEST(Kernels, UsefulOpsExcludeSyncInstructions) {
  BenchmarkParams params;
  params.samples = 32;
  Benchmark benchmark(BenchmarkKind::kSqrt32, params);
  const auto run = run_benchmark(benchmark, true);
  ASSERT_TRUE(run.result.ok());
  EXPECT_EQ(run.useful_ops + run.sync_stats.checkins + run.sync_stats.checkouts,
            run.counters.retired_ops);
}

TEST(KernelsEdge, MaximumBufferSize) {
  BenchmarkParams params;
  params.samples = 512;  // fills the per-core bank layout exactly
  Benchmark benchmark(BenchmarkKind::kSqrt32, params);
  const auto run = run_benchmark(benchmark, true, 500'000'000);
  ASSERT_TRUE(run.result.ok());
  EXPECT_EQ(run.verify_error, "");
}

TEST(KernelsEdge, MinimalStructuringElements) {
  BenchmarkParams params;
  params.samples = 32;
  params.l1_half = 1;
  params.l2_half = 1;
  Benchmark benchmark(BenchmarkKind::kMrpfltr, params);
  const auto run = run_benchmark(benchmark, true);
  ASSERT_TRUE(run.result.ok());
  EXPECT_EQ(run.verify_error, "");
}

TEST(KernelsEdge, WindowsLargerThanSignal) {
  // SE half-window larger than the buffer: every window clamps to the
  // whole array on both the golden and the assembly side.
  BenchmarkParams params;
  params.samples = 16;
  params.l1_half = 20;
  params.l2_half = 2;
  Benchmark benchmark(BenchmarkKind::kMrpfltr, params);
  const auto run = run_benchmark(benchmark, true);
  ASSERT_TRUE(run.result.ok());
  EXPECT_EQ(run.verify_error, "");
}

TEST(KernelsEdge, Sqrt32ExtremeRadicands) {
  // Host-injected extremes: zero, one, and the 32-bit maximum must survive
  // the multiword assembly path.
  BenchmarkParams params;
  params.samples = 8;
  Benchmark benchmark(BenchmarkKind::kSqrt32, params);
  sim::Platform platform(benchmark.platform_config(true));
  platform.load_program(benchmark.program(true));
  benchmark.load_inputs(platform);
  const std::uint32_t extremes[] = {0u, 1u, 3u, 4u, 0xFFFFu, 0x10000u,
                                    0xFFFE0001u, 0xFFFFFFFFu};
  for (unsigned c = 0; c < 8; ++c) {
    for (unsigned i = 0; i < 8; ++i) {
      platform.dm_write(channel_base(c) + kChanIn + i,
                        static_cast<std::uint16_t>(extremes[i] & 0xFFFF));
      platform.dm_write(channel_base(c) + kChanBufA + i,
                        static_cast<std::uint16_t>(extremes[i] >> 16));
    }
  }
  ASSERT_TRUE(platform.run(10'000'000).ok());
  for (unsigned c = 0; c < 8; ++c) {
    for (unsigned i = 0; i < 8; ++i) {
      EXPECT_EQ(platform.dm_read(channel_base(c) + kChanOut + i),
                ecg::isqrt32(extremes[i]))
          << "radicand " << extremes[i];
    }
  }
}

TEST(KernelsEdge, MrpdlnZeroAndHugeThresholds) {
  BenchmarkParams params;
  params.samples = 128;
  params.threshold = 1;  // hyper-sensitive: many detections, list bounded
  Benchmark sensitive(BenchmarkKind::kMrpdln, params);
  auto run = run_benchmark(sensitive, true);
  ASSERT_TRUE(run.result.ok());
  EXPECT_EQ(run.verify_error, "");

  params.threshold = 30000;  // nothing detected
  Benchmark deaf(BenchmarkKind::kMrpdln, params);
  run = run_benchmark(deaf, true);
  ASSERT_TRUE(run.result.ok());
  EXPECT_EQ(run.verify_error, "");
}

TEST(Kernels, DeterministicAcrossRuns) {
  BenchmarkParams params;
  params.samples = 48;
  Benchmark benchmark(BenchmarkKind::kMrpdln, params);
  const auto a = run_benchmark(benchmark, true);
  const auto b = run_benchmark(benchmark, true);
  EXPECT_EQ(a.counters.cycles, b.counters.cycles);
  EXPECT_EQ(a.counters.im_bank_accesses, b.counters.im_bank_accesses);
  EXPECT_EQ(a.useful_ops, b.useful_ops);
}

}  // namespace
}  // namespace ulpsync::kernels
