// Energy-exactness differential wall. The per-record energy report is a
// pure function of `EventCounters` / `SynchronizerStats`, which every host
// fast path (idle fast-forward, straight-line bursts, the batch engine,
// sharded spools, recorded replays) keeps bit-exact — so the serialized
// energy columns must be byte-identical no matter which execution mode
// produced the record. This suite pins that for every builtin workload,
// and pins the design-space search against its committed golden frontiers
// (tests/golden/frontier_*.csv).

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "scenario/batch.h"
#include "scenario/design_search.h"
#include "scenario/engine.h"
#include "scenario/record.h"
#include "scenario/registry.h"
#include "scenario/replay.h"
#include "scenario/shard.h"

namespace ulpsync::scenario {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory.
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/energy_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A bounded spec for `name` on its natural design (synchronized up to the
/// 8-core ceiling, crossbar-only above), with an energy report requested
/// at a mid-grid operating clock.
RunSpec spec_for(const std::string& name, unsigned samples) {
  RunSpec spec;
  spec.workload = name;
  spec.params.samples = samples;
  spec.max_cycles = 3'000'000;
  const auto workload = Registry::builtins().make(name, spec.params);
  spec.design = workload->num_cores() <= 8 ? DesignVariant::synchronized()
                                           : DesignVariant::xbar_only();
  spec.energy = EnergyRequest{EnergyRequest::Params::kAuto, 25.0, 0.0};
  return spec;
}

std::vector<std::string> builtin_names() {
  return Registry::builtins().names();
}

std::string param_name(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (auto& c : name) {
    if (c == '.') c = '_';
  }
  return name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// --- per-builtin execution-mode wall ----------------------------------------

class EnergyExactness : public ::testing::TestWithParam<std::string> {};

TEST_P(EnergyExactness, ColumnsBitIdenticalAcrossEveryExecutionMode) {
  const RunSpec spec = spec_for(GetParam(), 32);
  const Engine scalar(Registry::builtins());
  const RunRecord reference = scalar.run_one(spec);
  ASSERT_TRUE(reference.ok()) << reference.verify_error;
  ASSERT_TRUE(reference.energy_report.feasible);
  ASSERT_GT(reference.energy_report.breakdown.total_mw(), 0.0);
  ASSERT_GT(reference.energy_report.energy_per_op_pj, 0.0);
  const std::string row = to_csv_row(reference);

  {  // multi-threaded engine
    EngineOptions options;
    options.jobs = 4;
    const Engine threaded(Registry::builtins(), options);
    const std::vector<RunSpec> specs(4, spec);
    for (const RunRecord& record : threaded.run(specs)) {
      EXPECT_EQ(to_csv_row(record), row) << GetParam() << " (jobs 4)";
    }
  }
  {  // idle fast-forward disabled
    RunSpec slow = spec;
    slow.fast_forward = false;
    EXPECT_EQ(to_csv_row(scalar.run_one(slow)), row)
        << GetParam() << " (fast_forward off)";
  }
  {  // straight-line bursts disabled
    RunSpec slow = spec;
    slow.burst = false;
    EXPECT_EQ(to_csv_row(scalar.run_one(slow)), row)
        << GetParam() << " (burst off)";
  }
  {  // batched many-platform engine (falls back to scalar lanes honestly)
    const BatchEngine batch(Registry::builtins());
    const std::vector<RunSpec> specs(2, spec);
    const BatchResult result = batch.run(specs);
    ASSERT_EQ(result.records.size(), specs.size());
    for (const RunRecord& record : result.records) {
      EXPECT_EQ(to_csv_row(record), row) << GetParam() << " (batch engine)";
    }
  }
  {  // recorded-run envelope replays the same energy report
    const RecordOutcome outcome = record_one(spec, Registry::builtins());
    EXPECT_EQ(to_csv_row(outcome.record), row) << GetParam() << " (record)";
    const ReplayReport report =
        replay_recorded_run(outcome.recorded, Registry::builtins());
    EXPECT_TRUE(report.bit_identical) << GetParam() << ": " << report.error;
    EXPECT_EQ(report.csv_row, row) << GetParam() << " (replay)";
  }
}

TEST_P(EnergyExactness, TwoWorkerShardedMergeReproducesScalarCsvBytes) {
  // A small sweep exercising every EnergyRequest field: two kAuto clocks,
  // one explicit-voltage point, and one forced-baseline calibration.
  const RunSpec base = spec_for(GetParam(), 32);
  std::vector<RunSpec> specs;
  for (const double clock_mhz : {20.0, 40.0}) {
    RunSpec spec = base;
    spec.energy->f_mhz = clock_mhz;
    specs.push_back(std::move(spec));
  }
  {
    RunSpec spec = base;
    spec.energy = EnergyRequest{EnergyRequest::Params::kSynchronized, 30.0, 1.1};
    specs.push_back(std::move(spec));
  }
  {
    RunSpec spec = base;
    spec.energy = EnergyRequest{EnergyRequest::Params::kBaseline, 0.0, 0.0};
    specs.push_back(std::move(spec));
  }

  const Engine scalar(Registry::builtins());
  const std::string reference = to_csv(scalar.run(specs));

  const std::string dir = scratch_dir(GetParam());
  (void)plan_spool(dir, specs, Registry::builtins(), {.shards = 2});
  std::thread worker_a([&] {
    (void)work_spool(dir, Registry::builtins(), {.worker_id = "a"});
  });
  std::thread worker_b([&] {
    (void)work_spool(dir, Registry::builtins(), {.worker_id = "b"});
  });
  worker_a.join();
  worker_b.join();
  EXPECT_EQ(merge_spool(dir), reference) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Builtins, EnergyExactness,
                         ::testing::ValuesIn(builtin_names()), param_name);

// --- golden frontier fixtures -----------------------------------------------

TEST(DesignSearchGolden, MrpfltrFrontierReproducesCommittedBytes) {
  SearchOptions options;  // the defaults ARE the fixture configuration
  options.jobs = 4;       // never changes the frontier
  const SearchResult result = design_search(Registry::builtins(), options);
  EXPECT_EQ(frontier_csv(options.workload, result),
            read_file(std::string(ULPSYNC_GOLDEN_DIR) +
                      "/frontier_mrpfltr.csv"));

  // The knee is the paper's chosen design point: the full 8-core platform
  // with the hardware synchronizer and interleaved IM banking, run at the
  // lowest clock that still meets the real-time target.
  ASSERT_GE(result.knee_index, 0);
  const FrontierPoint& knee =
      result.frontier[static_cast<std::size_t>(result.knee_index)];
  EXPECT_EQ(knee.candidate.cores, 8u);
  EXPECT_TRUE(knee.candidate.design.features.hardware_synchronizer);
  EXPECT_EQ(knee.candidate.im_line_slots, 16u);
  EXPECT_GE(knee.mops, 16.0);
}

TEST(DesignSearchGolden, Sqrt32FrontierReproducesCommittedBytes) {
  SearchOptions options;
  options.workload = "sqrt32";
  options.jobs = 2;
  const SearchResult result = design_search(Registry::builtins(), options);
  EXPECT_EQ(frontier_csv(options.workload, result),
            read_file(std::string(ULPSYNC_GOLDEN_DIR) +
                      "/frontier_sqrt32.csv"));
  ASSERT_GE(result.knee_index, 0);
  const FrontierPoint& knee =
      result.frontier[static_cast<std::size_t>(result.knee_index)];
  EXPECT_EQ(knee.candidate.cores, 8u);
  EXPECT_TRUE(knee.candidate.design.features.hardware_synchronizer);
}

TEST(DesignSearchGolden, CommittedFrontierHashesAreStable) {
  // hashes.txt pins the frontier CSVs by raw-byte FNV-1a (the
  // `snapshot_tool hash` manifest hashes .csv files as plain bytes).
  std::ifstream manifest(std::string(ULPSYNC_GOLDEN_DIR) + "/hashes.txt");
  ASSERT_TRUE(manifest.is_open()) << "missing tests/golden/hashes.txt";
  std::string hash_hex, filename;
  std::size_t checked = 0;
  while (manifest >> hash_hex >> filename) {
    const std::size_t slash = filename.find_last_of('/');
    if (slash != std::string::npos) filename = filename.substr(slash + 1);
    if (filename.rfind("frontier_", 0) != 0) continue;
    const std::string bytes =
        read_file(std::string(ULPSYNC_GOLDEN_DIR) + "/" + filename);
    EXPECT_EQ(fnv1a64(bytes), std::stoull(hash_hex, nullptr, 16)) << filename;
    ++checked;
  }
  EXPECT_EQ(checked, 2u) << "expected hash rows for both frontier fixtures";
}

}  // namespace
}  // namespace ulpsync::scenario
