// The scenario API: registry lookup and duplicate rejection, run-matrix
// expansion, engine determinism (serial == parallel), record serialization
// round-trips, and the workload hooks (drive/report/verify) end to end.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "scenario/engine.h"
#include "scenario/matrix.h"
#include "scenario/record.h"
#include "scenario/registry.h"
#include "scenario/report.h"
#include "scenario/workloads.h"

namespace ulpsync::scenario {
namespace {

WorkloadParams small_params() {
  WorkloadParams params;
  params.samples = 32;
  return params;
}

// --- registry ---------------------------------------------------------------

TEST(Registry, BuiltinsArePresent) {
  const auto& registry = Registry::builtins();
  for (const char* name :
       {"mrpfltr", "sqrt32", "mrpdln", "mrpfltr.auto", "sqrt32.auto",
        "mrpdln.auto", "clip8", "bandcount", "bandcount.auto", "streaming",
        "sleepgen", "sleepgen16", "sleepgen32", "sleepgen64"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
  EXPECT_FALSE(registry.contains("no-such-workload"));
}

TEST(Registry, MakeInstantiatesWorkload) {
  const auto workload = Registry::builtins().make("sqrt32", small_params());
  EXPECT_EQ(workload->name(), "sqrt32");
  EXPECT_EQ(workload->num_cores(), 8u);
  EXPECT_GT(workload->program(true).size(), 0u);
  // Instrumented variant has sync points, the plain one does not.
  EXPECT_GT(count_sync_points(workload->program(true)), 0u);
  EXPECT_EQ(count_sync_points(workload->program(false)), 0u);
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW((void)Registry::builtins().make("nope", small_params()),
               std::out_of_range);
}

TEST(Registry, DuplicateNameRejected) {
  Registry registry;
  auto factory = [](const WorkloadParams& params) {
    return Registry::builtins().make("sqrt32", params);
  };
  registry.add("mine", factory);
  EXPECT_THROW(registry.add("mine", factory), std::invalid_argument);
  EXPECT_THROW(registry.add("", factory), std::invalid_argument);
  EXPECT_THROW(registry.add("other", nullptr), std::invalid_argument);
}

TEST(Registry, NamesAreSorted) {
  const auto names = Registry::builtins().names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(names.size(), 15u);
}

// --- matrix -----------------------------------------------------------------

TEST(Matrix, DefaultAxesExpandToBothDesigns) {
  const auto specs = Matrix().workload("sqrt32").expand();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_FALSE(specs[0].with_synchronizer());
  EXPECT_TRUE(specs[1].with_synchronizer());
  EXPECT_EQ(specs[0].workload, "sqrt32");
}

TEST(Matrix, SizeIsTheAxisProduct) {
  Matrix matrix;
  matrix.workloads({"mrpfltr", "sqrt32", "mrpdln"})
      .num_cores({1, 2, 4, 8})
      .samples({32, 64})
      .im_line_slots({4, 16, 0});
  EXPECT_EQ(matrix.size(), 3u * 2u * 4u * 2u * 3u);
  EXPECT_EQ(matrix.expand().size(), matrix.size());
}

TEST(Matrix, AxesLandInSpecFields) {
  Matrix matrix;
  matrix.workload("sqrt32")
      .design(DesignVariant::synchronized())
      .num_cores({4})
      .samples({48})
      .arbitration({sim::ArbitrationPolicy::kOldestFirst})
      .im_line_slots({0})
      .max_cycles(1000);
  const auto specs = matrix.expand();
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].params.num_channels, 4u);
  EXPECT_EQ(specs[0].params.samples, 48u);
  ASSERT_TRUE(specs[0].arbitration.has_value());
  EXPECT_EQ(*specs[0].arbitration, sim::ArbitrationPolicy::kOldestFirst);
  ASSERT_TRUE(specs[0].im_line_slots.has_value());
  EXPECT_EQ(*specs[0].im_line_slots, 0u);
  EXPECT_EQ(specs[0].max_cycles, 1000u);
}

TEST(Matrix, EmptyAxisListMeansAxisUnset) {
  // A dynamically built (and empty) axis must not zero out the product.
  Matrix matrix;
  matrix.workload("sqrt32").arbitration({}).im_line_slots({});
  EXPECT_EQ(matrix.size(), 2u);
  const auto specs = matrix.expand();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_FALSE(specs[0].arbitration.has_value());
  EXPECT_FALSE(specs[0].im_line_slots.has_value());
}

TEST(Matrix, ExpansionOrderIsDeterministic) {
  Matrix matrix;
  matrix.workloads({"a", "b"}).samples({1, 2});
  const auto specs = matrix.expand();
  ASSERT_EQ(specs.size(), 8u);
  // workload outermost, then design, then samples.
  EXPECT_EQ(specs[0].workload, "a");
  EXPECT_EQ(specs[3].workload, "a");
  EXPECT_EQ(specs[4].workload, "b");
  EXPECT_FALSE(specs[0].with_synchronizer());
  EXPECT_EQ(specs[0].params.samples, 1u);
  EXPECT_EQ(specs[1].params.samples, 2u);
}

// --- engine -----------------------------------------------------------------

TEST(Engine, RunsABenchmarkPairAndVerifies) {
  Engine engine(Registry::builtins());
  const auto records =
      engine.run(Matrix().workload("sqrt32").base_params(small_params()));
  ASSERT_EQ(records.size(), 2u);
  for (const auto& record : records) {
    EXPECT_TRUE(record.ok()) << record.status << " " << record.verify_error;
    EXPECT_GT(record.cycles(), 0u);
    EXPECT_GT(record.useful_ops, 0u);
    EXPECT_GT(record.ops_per_cycle, 0.0);
  }
  // Same program semantics on both designs; the synchronizer only buys time.
  EXPECT_EQ(records[0].useful_ops, records[1].useful_ops);
  EXPECT_LT(records[1].cycles(), records[0].cycles());
  EXPECT_GT(records[1].lockstep_fraction, records[0].lockstep_fraction);
}

TEST(Engine, SleepgenScalesTo64CoresAndVerifies) {
  // The wide-platform scaling workload: every width runs duty-cycled
  // windows on the synchronizer-less xbar design and verifies against the
  // host mirror. Useful work should scale with the core count (the cores
  // stay in natural lockstep).
  Engine engine(Registry::builtins());
  double ops_per_cycle_8 = 0.0;
  for (const unsigned cores : {8u, 16u, 32u, 64u}) {
    RunSpec spec;
    spec.workload = "sleepgen";
    spec.params = small_params();
    spec.params.num_channels = cores;
    spec.design = scenario::DesignVariant::xbar_only();
    const auto record = engine.run_one(spec);
    EXPECT_TRUE(record.ok()) << cores << " cores: " << record.status << " "
                             << record.verify_error;
    if (cores == 8) ops_per_cycle_8 = record.ops_per_cycle;
    if (cores == 64) {
      EXPECT_GT(record.ops_per_cycle, 6.0 * ops_per_cycle_8)
          << "64-core ops/cycle should scale well beyond 8-core";
    }
  }
}

TEST(Engine, SleepgenFixedAliasesPinTheirWidth) {
  const auto wide = Registry::builtins().make("sleepgen64", small_params());
  EXPECT_EQ(wide->num_cores(), 64u);
  EXPECT_EQ(wide->base_config(false).num_cores, 64u);
}

TEST(Engine, SynchronizerBeyondEightCoresIsRejected) {
  // PlatformConfig::validate: the checkpoint word caps the synchronizer at
  // 8 cores; a synchronized design on a 16-core sleepgen surfaces as an
  // error record (the Platform constructor throws).
  Engine engine(Registry::builtins());
  RunSpec spec;
  spec.workload = "sleepgen";
  spec.params = small_params();
  spec.params.num_channels = 16;
  spec.design = scenario::DesignVariant::synchronized();
  const auto record = engine.run_one(spec);
  EXPECT_EQ(record.status, "error");
  EXPECT_NE(record.verify_error.find("synchronizer"), std::string::npos)
      << record.verify_error;
}

TEST(Engine, CoreCountAboveSixtyFourIsRejected) {
  sim::PlatformConfig config = sim::PlatformConfig::without_synchronizer();
  config.num_cores = 65;
  EXPECT_FALSE(config.validate().empty());
  EXPECT_THROW(sim::Platform{config}, std::invalid_argument);
  config.num_cores = 64;
  EXPECT_TRUE(config.validate().empty());
}

TEST(Engine, UnknownWorkloadYieldsErrorRecordNotThrow) {
  Engine engine(Registry::builtins());
  const auto record = engine.run_one(RunSpec{.workload = "no-such"});
  EXPECT_EQ(record.status, "error");
  EXPECT_FALSE(record.ok());
  EXPECT_NE(record.verify_error.find("no-such"), std::string::npos);
  EXPECT_THROW(require_ok({record}), std::runtime_error);
}

TEST(Engine, ParallelRunIsIdenticalToSerial) {
  Matrix matrix;
  matrix.workloads({"sqrt32", "clip8", "bandcount"}).base_params(small_params());
  const auto serial = Engine(Registry::builtins(), {.jobs = 1}).run(matrix);
  const auto parallel = Engine(Registry::builtins(), {.jobs = 4}).run(matrix);
  ASSERT_EQ(serial.size(), parallel.size());
  // Byte-identical serialized output, the acceptance criterion for
  // deterministic sweeps.
  EXPECT_EQ(to_csv(serial), to_csv(parallel));
  EXPECT_EQ(to_json(serial), to_json(parallel));
}

TEST(Engine, ProgressCallbackCountsEveryRun) {
  Matrix matrix;
  matrix.workload("clip8").base_params(small_params());
  std::size_t calls = 0;
  std::size_t last_done = 0;
  EngineOptions options;
  options.jobs = 2;
  options.on_result = [&](const RunRecord&, std::size_t done,
                          std::size_t total) {
    ++calls;
    last_done = done;
    EXPECT_EQ(total, 2u);
  };
  const auto records = Engine(Registry::builtins(), options).run(matrix);
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(calls, 2u);
  EXPECT_EQ(last_done, 2u);
}

TEST(Engine, ThrowingProgressCallbackIsRethrownNotTerminate) {
  Matrix matrix;
  matrix.workload("clip8").base_params(small_params());
  EngineOptions options;
  options.jobs = 2;
  options.on_result = [](const RunRecord&, std::size_t, std::size_t) {
    throw std::runtime_error("callback failed");
  };
  EXPECT_THROW((void)Engine(Registry::builtins(), options).run(matrix),
               std::runtime_error);
}

TEST(Engine, FeatureTogglesReachThePlatform) {
  // The ablation path: a variant with the synchronizer but without the
  // enhanced D-Xbar policy must not record policy holds.
  RunSpec spec;
  spec.workload = "mrpdln";
  spec.params = small_params();
  spec.design = {"no dxbar policy", {true, false, true}};
  const auto record = Engine(Registry::builtins()).run_one(spec);
  EXPECT_TRUE(record.ok()) << record.verify_error;
  EXPECT_EQ(record.counters.policy_hold_events, 0u);
}

TEST(Engine, StreamingWorkloadDrivesWindows) {
  WorkloadParams params;
  params.samples = 3 * 125;  // three acquisition windows
  const auto records =
      Engine(Registry::builtins()).run(Matrix().workload("streaming").base_params(params));
  ASSERT_EQ(records.size(), 2u);
  for (const auto& record : records) {
    EXPECT_TRUE(record.ok()) << record.status << " " << record.verify_error;
    EXPECT_EQ(record.status, "all-asleep");
    EXPECT_EQ(record.extra_value("windows"), "3");
    EXPECT_FALSE(record.extra_value("busy_cycles").empty());
  }
}

TEST(Engine, FixedAsmDescRejectsCoreCountSweep) {
  // A fixed desc cannot be resized by a num_cores axis: the run must fail
  // loudly instead of executing on the wrong platform and mislabeling the
  // record. The builtins ("clip8" etc.) rebuild their desc from params, so
  // they sweep fine.
  Registry registry;
  AsmWorkloadDesc desc;
  desc.name = "fixed";
  desc.source = "halt\n";
  desc.num_cores = 8;
  desc.load = [](sim::Platform&, const WorkloadParams&) {};
  register_asm_workload(registry, desc);

  RunSpec spec;
  spec.workload = "fixed";
  spec.params.num_channels = 4;
  const auto record = Engine(registry).run_one(spec);
  EXPECT_EQ(record.status, "error");
  EXPECT_NE(record.verify_error.find("8 cores"), std::string::npos);

  // The builtin path: clip8 sweeps its platform with the axis.
  RunSpec clip;
  clip.workload = "clip8";
  clip.params = small_params();
  clip.params.num_channels = 4;
  const auto swept = Engine(Registry::builtins()).run_one(clip);
  EXPECT_TRUE(swept.ok()) << swept.verify_error;
}

TEST(Engine, AutoInstrumentedVariantVerifies) {
  RunSpec spec;
  spec.workload = "bandcount.auto";
  spec.params = small_params();
  const auto record = Engine(Registry::builtins()).run_one(spec);
  EXPECT_TRUE(record.ok()) << record.verify_error;
  EXPECT_NE(record.extra_value("sync_points"), "0");
}

// --- record serialization ---------------------------------------------------

RunRecord sample_record() {
  RunSpec spec;
  spec.workload = "sqrt32";
  spec.params = small_params();
  spec.params.per_core_threshold_delta = {1, -2, 3, 0, 0, 0, 0, 7};
  spec.arbitration = sim::ArbitrationPolicy::kOldestFirst;
  spec.im_line_slots = 0;
  return Engine(Registry::builtins()).run_one(spec);
}

TEST(Record, CsvRoundTrip) {
  const std::vector<RunRecord> records = {sample_record()};
  const auto csv = to_csv(records);
  const auto parsed = records_from_csv(csv);
  ASSERT_EQ(parsed.size(), 1u);
  // Re-serializing the parsed records must reproduce the bytes.
  EXPECT_EQ(to_csv(parsed), csv);
  EXPECT_EQ(parsed[0].spec.workload, "sqrt32");
  EXPECT_EQ(parsed[0].cycles(), records[0].cycles());
  EXPECT_EQ(parsed[0].useful_ops, records[0].useful_ops);
  EXPECT_DOUBLE_EQ(parsed[0].ops_per_cycle, records[0].ops_per_cycle);
  EXPECT_EQ(parsed[0].spec.params.per_core_threshold_delta,
            records[0].spec.params.per_core_threshold_delta);
  ASSERT_TRUE(parsed[0].spec.arbitration.has_value());
  EXPECT_EQ(*parsed[0].spec.arbitration, sim::ArbitrationPolicy::kOldestFirst);
  ASSERT_TRUE(parsed[0].spec.im_line_slots.has_value());
  EXPECT_EQ(*parsed[0].spec.im_line_slots, 0u);
}

TEST(Record, JsonRoundTrip) {
  const auto record = sample_record();
  const auto json = to_json(record);
  const auto parsed = record_from_json(json);
  EXPECT_EQ(to_json(parsed), json);
  EXPECT_EQ(parsed.status, record.status);
  EXPECT_EQ(parsed.spec.design.label, record.spec.design.label);
  EXPECT_EQ(parsed.counters.im_bank_accesses, record.counters.im_bank_accesses);
  EXPECT_EQ(parsed.sync_stats.checkins, record.sync_stats.checkins);
  EXPECT_DOUBLE_EQ(parsed.energy.im_pj, record.energy.im_pj);
  // Extras survive the round trip (sync_points comes from report()).
  EXPECT_EQ(parsed.extra_value("sync_points"),
            record.extra_value("sync_points"));
}

TEST(Record, JsonArrayRoundTrip) {
  Matrix matrix;
  matrix.workload("clip8").base_params(small_params());
  const auto records = Engine(Registry::builtins()).run(matrix);
  const auto parsed = records_from_json(to_json(records));
  ASSERT_EQ(parsed.size(), records.size());
  EXPECT_EQ(to_json(parsed), to_json(records));
}

TEST(Record, QuotingSurvivesHostileStrings) {
  RunRecord record;
  record.spec.workload = "evil,\"name\"\nwith newline";
  record.status = "error";
  record.verify_error = "line1\nline2\twith\ttabs, commas and \"quotes\"";
  const std::vector<RunRecord> records = {record};
  const auto csv_parsed = records_from_csv(to_csv(records));
  ASSERT_EQ(csv_parsed.size(), 1u);
  EXPECT_EQ(csv_parsed[0].spec.workload, record.spec.workload);
  EXPECT_EQ(csv_parsed[0].verify_error, record.verify_error);
  const auto json_parsed = record_from_json(to_json(record));
  EXPECT_EQ(json_parsed.spec.workload, record.spec.workload);
  EXPECT_EQ(json_parsed.verify_error, record.verify_error);
}

TEST(Record, MalformedInputThrows) {
  EXPECT_THROW((void)records_from_csv("not,a,real,header\n1,2,3,4\n"),
               std::invalid_argument);
  EXPECT_THROW((void)record_from_json("{\"workload\": }"),
               std::invalid_argument);
  EXPECT_THROW((void)record_from_json("nonsense"), std::invalid_argument);
  // Corrupted numeric cells must fail loudly, not silently become 0.
  EXPECT_THROW((void)record_from_json("{\"cycles\": 12x34}"),
               std::invalid_argument);
  EXPECT_THROW((void)record_from_json("{\"ops_per_cycle\": \"garbage\"}"),
               std::invalid_argument);
  // Non-latin \u escapes are outside the writer's subset: reject, don't
  // truncate.
  EXPECT_THROW((void)record_from_json("{\"workload\": \"\\u0394x\"}"),
               std::invalid_argument);
}

// --- report helpers ---------------------------------------------------------

TEST(Report, FindPairAndSpeedup) {
  Engine engine(Registry::builtins());
  const auto records =
      engine.run(Matrix().workload("sqrt32").base_params(small_params()));
  const auto pair = find_pair(records, "sqrt32");
  EXPECT_GT(speedup(pair), 1.0);
  EXPECT_THROW((void)find_pair(records, "mrpdln"), std::runtime_error);
  const auto breakdown = breakdown_at_mops(*pair.synced, 8.0);
  EXPECT_GT(breakdown.total_mw(), 0.0);
}

// --- timed sweeps and PerfBudget --------------------------------------------

TEST(EngineTimed, ReportsPerRunTimingAndTotals) {
  Engine engine(Registry::builtins());
  const auto sweep = engine.run_timed(
      Matrix().workload("sqrt32").base_params(small_params()));
  require_ok(sweep.records);
  EXPECT_EQ(sweep.records.size(), 2u);  // both designs
  EXPECT_EQ(sweep.perf.executed, 2u);
  EXPECT_EQ(sweep.perf.skipped, 0u);
  EXPECT_EQ(sweep.perf.run_wall_seconds.size(), 2u);
  std::uint64_t cycles = 0;
  for (const auto& record : sweep.records) cycles += record.cycles();
  EXPECT_EQ(sweep.perf.sim_cycles, cycles);
  EXPECT_GT(sweep.perf.wall_seconds, 0.0);
  for (const double seconds : sweep.perf.run_wall_seconds)
    EXPECT_GT(seconds, 0.0);
  EXPECT_GT(sweep.perf.sim_cycles_per_second(), 0.0);
}

TEST(EngineTimed, RunAndRunTimedRecordsAgree) {
  const Matrix matrix = Matrix().workload("clip8").base_params(small_params());
  Engine engine(Registry::builtins());
  const auto plain = engine.run(matrix);
  const auto timed = engine.run_timed(matrix);
  ASSERT_EQ(plain.size(), timed.records.size());
  EXPECT_EQ(to_csv(plain), to_csv(timed.records));
}

TEST(EngineTimed, BudgetSkipsUnstartedRuns) {
  // Each sqrt32 run takes well over the 1 ms budget, so run 1 (claimed
  // before the deadline can expire) executes and later runs are skipped.
  WorkloadParams params;
  params.samples = 256;
  EngineOptions options;
  options.budget.wall_limit = std::chrono::milliseconds(1);
  Engine engine(Registry::builtins(), options);
  const auto sweep = engine.run_timed(
      Matrix().workload("sqrt32").num_cores({8, 8, 8, 8}).base_params(params));
  EXPECT_EQ(sweep.perf.executed + sweep.perf.skipped, sweep.records.size());
  EXPECT_GE(sweep.perf.executed, 1u);
  EXPECT_GE(sweep.perf.skipped, 1u);
  for (const auto& record : sweep.records) {
    if (record.status == "skipped") {
      EXPECT_EQ(record.spec.workload, "sqrt32");  // spec is preserved
      EXPECT_FALSE(record.ok());
      EXPECT_FALSE(record.verify_error.empty());
    } else {
      EXPECT_TRUE(record.ok()) << record.verify_error;
    }
  }
}

}  // namespace
}  // namespace ulpsync::scenario
