// Idle fast-forward and predecode equivalence.
//
// The hot-path machinery must be *exactly* invisible: with fast-forward on
// vs. off, every builtin workload must produce bit-identical cycle counts,
// event counters, synchronizer statistics, trace timelines and VCD output;
// and a program predecoded from its encoded image must behave identically
// to one loaded from the assembler's decoded code.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "asm/assembler.h"
#include "scenario/engine.h"
#include "scenario/registry.h"
#include "sim/decoded_image.h"
#include "sim/platform.h"
#include "sim/trace.h"
#include "sim/vcd.h"

namespace ulpsync {
namespace {

using scenario::Engine;
using scenario::EngineOptions;
using scenario::Registry;
using scenario::RunRecord;
using scenario::RunSpec;

void expect_counters_equal(const sim::EventCounters& a,
                           const sim::EventCounters& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.im_bank_accesses, b.im_bank_accesses);
  EXPECT_EQ(a.im_fetches_delivered, b.im_fetches_delivered);
  EXPECT_EQ(a.im_broadcast_groups, b.im_broadcast_groups);
  EXPECT_EQ(a.fetch_conflict_cycles, b.fetch_conflict_cycles);
  EXPECT_EQ(a.dm_bank_accesses, b.dm_bank_accesses);
  EXPECT_EQ(a.dm_requests_granted, b.dm_requests_granted);
  EXPECT_EQ(a.dm_broadcast_reads, b.dm_broadcast_reads);
  EXPECT_EQ(a.dm_conflict_cycles, b.dm_conflict_cycles);
  EXPECT_EQ(a.policy_hold_events, b.policy_hold_events);
  EXPECT_EQ(a.retired_ops, b.retired_ops);
  EXPECT_EQ(a.core_active_cycles, b.core_active_cycles);
  EXPECT_EQ(a.core_fetch_stall_cycles, b.core_fetch_stall_cycles);
  EXPECT_EQ(a.core_mem_stall_cycles, b.core_mem_stall_cycles);
  EXPECT_EQ(a.core_sync_stall_cycles, b.core_sync_stall_cycles);
  EXPECT_EQ(a.core_sleep_cycles, b.core_sleep_cycles);
  EXPECT_EQ(a.core_branch_bubble_cycles, b.core_branch_bubble_cycles);
  EXPECT_EQ(a.core_wakeup_ramp_cycles, b.core_wakeup_ramp_cycles);
  EXPECT_EQ(a.lockstep_cycles, b.lockstep_cycles);
  EXPECT_EQ(a.fetch_cycles, b.fetch_cycles);
  EXPECT_EQ(a.divergence_events, b.divergence_events);
  EXPECT_EQ(a.per_core_retired, b.per_core_retired);
  EXPECT_EQ(a.per_core_active, b.per_core_active);
  EXPECT_EQ(a.per_core_sleep, b.per_core_sleep);
}

void expect_sync_stats_equal(const core::SynchronizerStats& a,
                             const core::SynchronizerStats& b) {
  EXPECT_EQ(a.rmw_ops, b.rmw_ops);
  EXPECT_EQ(a.dm_accesses, b.dm_accesses);
  EXPECT_EQ(a.checkins, b.checkins);
  EXPECT_EQ(a.checkouts, b.checkouts);
  EXPECT_EQ(a.merged_requests, b.merged_requests);
  EXPECT_EQ(a.wakeup_events, b.wakeup_events);
  EXPECT_EQ(a.wakeups_delivered, b.wakeups_delivered);
  EXPECT_EQ(a.max_merge_width, b.max_merge_width);
}

RunRecord run_workload(const std::string& workload, bool fast_forward,
                       bool measure_lockstep, bool burst = true) {
  EngineOptions options;
  options.measure_lockstep = measure_lockstep;
  const Engine engine(Registry::builtins(), options);
  RunSpec spec;
  spec.workload = workload;
  spec.params.samples = 48;
  spec.fast_forward = fast_forward;
  spec.burst = burst;
  return engine.run_one(spec);
}

// --- fast-forward on/off equivalence ----------------------------------------

class FastForwardEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(FastForwardEquivalence, CountersAndStatusIdentical) {
  // Observer-free runs: fast-forward actually engages in the "on" run.
  const RunRecord with_ff = run_workload(GetParam(), true, false);
  const RunRecord no_ff = run_workload(GetParam(), false, false);
  EXPECT_TRUE(with_ff.ok()) << with_ff.verify_error;
  EXPECT_TRUE(no_ff.ok()) << no_ff.verify_error;
  EXPECT_EQ(with_ff.status, no_ff.status);
  EXPECT_EQ(with_ff.useful_ops, no_ff.useful_ops);
  expect_counters_equal(with_ff.counters, no_ff.counters);
  expect_sync_stats_equal(with_ff.sync_stats, no_ff.sync_stats);
}

TEST_P(FastForwardEquivalence, LockstepMetricsIdentical) {
  // With the analyzer attached fast-forward self-suppresses; the records
  // must still be identical in every field, including lockstep_fraction.
  const RunRecord with_ff = run_workload(GetParam(), true, true);
  const RunRecord no_ff = run_workload(GetParam(), false, true);
  EXPECT_EQ(with_ff.lockstep_fraction, no_ff.lockstep_fraction);
  EXPECT_EQ(with_ff.ops_per_cycle, no_ff.ops_per_cycle);
  expect_counters_equal(with_ff.counters, no_ff.counters);
}

INSTANTIATE_TEST_SUITE_P(Builtins, FastForwardEquivalence,
                         ::testing::Values("mrpfltr", "sqrt32", "mrpdln",
                                           "sqrt32.auto", "clip8", "bandcount",
                                           "streaming"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name)
                             if (c == '.') c = '_';
                           return name;
                         });

// --- burst on/off equivalence ------------------------------------------------

class BurstEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(BurstEquivalence, CountersStatusAndLockstepIdentical) {
  // Straight-line bursts and the slim fetch-regime path must be exactly
  // invisible: with bursts on vs off — fast-forward on in both runs —
  // every workload produces bit-identical counters, sync stats and
  // lockstep metrics.
  const RunRecord with_burst = run_workload(GetParam(), true, true, true);
  const RunRecord no_burst = run_workload(GetParam(), true, true, false);
  EXPECT_EQ(with_burst.status, no_burst.status);
  EXPECT_EQ(with_burst.useful_ops, no_burst.useful_ops);
  EXPECT_EQ(with_burst.lockstep_fraction, no_burst.lockstep_fraction);
  EXPECT_EQ(with_burst.ops_per_cycle, no_burst.ops_per_cycle);
  expect_counters_equal(with_burst.counters, no_burst.counters);
  expect_sync_stats_equal(with_burst.sync_stats, no_burst.sync_stats);
}

TEST_P(BurstEquivalence, NaiveLoopMatchesAllFastPaths) {
  // Everything on vs everything off: the strongest end-to-end form.
  const RunRecord fast = run_workload(GetParam(), true, true, true);
  const RunRecord naive = run_workload(GetParam(), false, true, false);
  EXPECT_EQ(fast.status, naive.status);
  EXPECT_EQ(fast.lockstep_fraction, naive.lockstep_fraction);
  expect_counters_equal(fast.counters, naive.counters);
  expect_sync_stats_equal(fast.sync_stats, naive.sync_stats);
}

INSTANTIATE_TEST_SUITE_P(Builtins, BurstEquivalence,
                         ::testing::Values("mrpfltr", "sqrt32", "mrpdln",
                                           "sqrt32.auto", "clip8", "bandcount",
                                           "streaming", "sleepgen"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name)
                             if (c == '.') c = '_';
                           return name;
                         });

// --- fast-forward engages (and is exact) at the platform level --------------

assembler::Program compile(std::string_view source) {
  auto result = assembler::assemble(source);
  EXPECT_TRUE(result.ok()) << result.error_text();
  return std::move(result.program);
}

// Two barriers: all cores check out, sleep, and wake together — every wake
// opens a wakeup-ramp window that only fast-forward can skip.
constexpr std::string_view kBarrierKernel = R"(
    movi r1, 0
  loop:
    addi r1, r1, 1
    sinc #0
    sdec #0
    cmpi r1, 20
    blt  loop
    halt
)";

TEST(FastForward, SkipsIdleCyclesOnBarrierKernel) {
  auto config = sim::PlatformConfig::with_synchronizer();
  sim::Platform platform(config);
  platform.load_program(compile(kBarrierKernel));
  const auto result = platform.run(1'000'000);
  EXPECT_TRUE(result.ok()) << result.to_string();
  EXPECT_GT(platform.fast_forwarded_cycles(), 0u);
  EXPECT_LE(platform.fast_forwarded_cycles(), platform.counters().cycles);
}

TEST(FastForward, DisabledByConfigFlag) {
  auto config = sim::PlatformConfig::with_synchronizer();
  config.fast_forward = false;
  sim::Platform platform(config);
  platform.load_program(compile(kBarrierKernel));
  ASSERT_TRUE(platform.run(1'000'000).ok());
  EXPECT_EQ(platform.fast_forwarded_cycles(), 0u);
}

TEST(FastForward, RespectsMaxCyclesExactly) {
  // A budget that expires inside a fast-forwardable window must stop at
  // exactly the budget, like the naive loop does.
  for (const std::uint64_t budget : {50u, 137u, 1000u}) {
    auto on = sim::PlatformConfig::with_synchronizer();
    auto off = on;
    off.fast_forward = false;
    sim::Platform p_on(on);
    sim::Platform p_off(off);
    p_on.load_program(compile(kBarrierKernel));
    p_off.load_program(compile(kBarrierKernel));
    const auto r_on = p_on.run(budget);
    const auto r_off = p_off.run(budget);
    EXPECT_EQ(r_on.cycles, r_off.cycles) << "budget " << budget;
    EXPECT_EQ(static_cast<int>(r_on.status), static_cast<int>(r_off.status));
    expect_counters_equal(p_on.counters(), p_off.counters());
  }
}

TEST(FastForward, TraceAndVcdIdentical) {
  // An attached observer suppresses fast-forward, so trace/VCD output is
  // identical by construction — assert it anyway: this is the documented
  // contract that waveforms never change when fast-forward is enabled.
  auto run_traced = [](bool fast_forward) {
    auto config = sim::PlatformConfig::with_synchronizer();
    config.fast_forward = fast_forward;
    sim::Platform platform(config);
    platform.load_program(compile(kBarrierKernel));
    sim::TimelineTracer tracer;
    tracer.attach(platform);
    std::ostringstream vcd_out;
    sim::VcdWriter vcd(vcd_out);
    vcd.attach(platform);  // replaces the tracer as observer
    EXPECT_TRUE(platform.run(1'000'000).ok());
    vcd.finish();
    EXPECT_EQ(platform.fast_forwarded_cycles(), 0u);
    return vcd_out.str();
  };
  EXPECT_EQ(run_traced(true), run_traced(false));

  auto run_timeline = [](bool fast_forward) {
    auto config = sim::PlatformConfig::with_synchronizer();
    config.fast_forward = fast_forward;
    sim::Platform platform(config);
    platform.load_program(compile(kBarrierKernel));
    sim::TimelineTracer tracer;
    tracer.attach(platform);
    EXPECT_TRUE(platform.run(1'000'000).ok());
    return tracer.timeline(400);
  };
  EXPECT_EQ(run_timeline(true), run_timeline(false));
}

TEST(FastForward, InterruptDrivenWakeupMatchesNaive) {
  // Duty-cycle shape: all cores SLEEP, the host wakes them by interrupt;
  // the post-interrupt wake-up ramp is a fast-forwardable window.
  constexpr std::string_view kSleepKernel = R"(
      movi r2, 0
    loop:
      addi r2, r2, 1
      sleep
      cmpi r2, 5
      blt  loop
      halt
  )";
  auto drive = [&](bool fast_forward) {
    auto config = sim::PlatformConfig::with_synchronizer();
    config.fast_forward = fast_forward;
    sim::Platform platform(config);
    platform.load_program(compile(kSleepKernel));
    std::uint64_t ff_seen = 0;
    for (int window = 0; window < 10; ++window) {
      const auto result = platform.run(100'000);
      if (result.status != sim::RunResult::Status::kAllAsleep) break;
      platform.interrupt_all();
    }
    ff_seen = platform.fast_forwarded_cycles();
    return std::pair<std::uint64_t, std::uint64_t>(platform.counters().cycles,
                                                   ff_seen);
  };
  const auto [cycles_on, ff_on] = drive(true);
  const auto [cycles_off, ff_off] = drive(false);
  EXPECT_EQ(cycles_on, cycles_off);
  EXPECT_GT(ff_on, 0u);
  EXPECT_EQ(ff_off, 0u);
}

// --- burst engagement at the platform level ---------------------------------

// A long straight-line ALU run: the burst fast path's home turf.
constexpr std::string_view kStraightKernel = R"(
    movi r2, 200
  loop:
    addi r1, r1, 1
    xor  r3, r3, r1
    slli r4, r1, 2
    add  r5, r5, r4
    sub  r6, r5, r3
    andi r6, r6, 0x3FF
    or   r7, r7, r6
    addi r2, r2, -1
    cmpi r2, 0
    bne  loop
    halt
)";

TEST(Burst, EngagesOnStraightLineRuns) {
  // A single fetcher is always burst-aligned; staggered multi-core starts
  // are covered by the equivalence suites above.
  auto config = sim::PlatformConfig::with_synchronizer();
  config.num_cores = 1;
  sim::Platform platform(config);
  platform.load_program(compile(kStraightKernel));
  ASSERT_TRUE(platform.run(1'000'000).ok());
  EXPECT_GT(platform.burst_cycles(), 0u);
  EXPECT_LE(platform.burst_cycles(), platform.counters().cycles);
}

TEST(Burst, RegionCoversSerializedFetchCycles) {
  // Eight staggered cores on one short loop serialize on the IM bank —
  // the slim fetch-regime path's home turf.
  sim::Platform platform(sim::PlatformConfig::with_synchronizer());
  platform.load_program(compile(kStraightKernel));
  ASSERT_TRUE(platform.run(10'000'000).ok());
  EXPECT_GT(platform.fetch_region_cycles(), 0u);
}

TEST(Burst, DisabledByConfigFlag) {
  auto config = sim::PlatformConfig::with_synchronizer();
  config.burst = false;
  sim::Platform platform(config);
  platform.load_program(compile(kStraightKernel));
  ASSERT_TRUE(platform.run(10'000'000).ok());
  EXPECT_EQ(platform.burst_cycles(), 0u);
  EXPECT_EQ(platform.fetch_region_cycles(), 0u);
}

TEST(Burst, SuppressedByObserver) {
  sim::Platform platform(sim::PlatformConfig::with_synchronizer());
  platform.load_program(compile(kStraightKernel));
  std::uint64_t observed = 0;
  platform.set_observer([&](const sim::Platform&) { ++observed; });
  ASSERT_TRUE(platform.run(1'000'000).ok());
  EXPECT_EQ(platform.burst_cycles(), 0u);
  EXPECT_EQ(platform.fetch_region_cycles(), 0u);
  EXPECT_EQ(observed, platform.counters().cycles);
}

TEST(Burst, RespectsMaxCyclesExactly) {
  // Budgets that expire inside a straight-line run must stop at exactly the
  // budget, like the naive loop does.
  for (const std::uint64_t budget : {17u, 64u, 333u, 2000u}) {
    auto on = sim::PlatformConfig::with_synchronizer();
    auto off = on;
    off.burst = false;
    off.fast_forward = false;
    sim::Platform p_on(on);
    sim::Platform p_off(off);
    p_on.load_program(compile(kStraightKernel));
    p_off.load_program(compile(kStraightKernel));
    const auto r_on = p_on.run(budget);
    const auto r_off = p_off.run(budget);
    EXPECT_EQ(r_on.cycles, r_off.cycles) << "budget " << budget;
    EXPECT_EQ(static_cast<int>(r_on.status), static_cast<int>(r_off.status));
    expect_counters_equal(p_on.counters(), p_off.counters());
  }
}

TEST(Burst, TraceAndVcdIdenticalAcrossBurstModes) {
  // Waveforms attach an observer, which suppresses the fast paths; assert
  // the documented contract that output never changes with bursts enabled.
  auto run_traced = [](bool burst) {
    auto config = sim::PlatformConfig::with_synchronizer();
    config.burst = burst;
    sim::Platform platform(config);
    platform.load_program(compile(kStraightKernel));
    std::ostringstream vcd_out;
    sim::VcdWriter vcd(vcd_out);
    vcd.attach(platform);
    EXPECT_TRUE(platform.run(1'000'000).ok());
    vcd.finish();
    return vcd_out.str();
  };
  EXPECT_EQ(run_traced(true), run_traced(false));

  auto run_timeline = [](bool burst) {
    auto config = sim::PlatformConfig::with_synchronizer();
    config.burst = burst;
    sim::Platform platform(config);
    platform.load_program(compile(kStraightKernel));
    sim::TimelineTracer tracer;
    tracer.attach(platform);
    EXPECT_TRUE(platform.run(1'000'000).ok());
    return tracer.timeline(400);
  };
  EXPECT_EQ(run_timeline(true), run_timeline(false));
}

// --- predecode round-trip ---------------------------------------------------

TEST(DecodedImage, EncodedAndDecodedLoadsAgree) {
  const auto program = compile(kBarrierKernel);
  const sim::PlatformConfig config;
  sim::DecodedImage from_code(config.im_slots(), config.im_banks,
                              config.im_bank_slots, config.im_line_slots);
  from_code.load(program.origin, program.code);
  sim::DecodedImage from_image(config.im_slots(), config.im_banks,
                               config.im_bank_slots, config.im_line_slots);
  ASSERT_EQ(from_image.load_encoded(program.origin, program.image), "");
  EXPECT_EQ(from_code, from_image);
  for (std::uint32_t pc = from_code.begin(); pc < from_code.end(); ++pc) {
    EXPECT_EQ(from_code.at(pc), from_image.at(pc)) << "slot " << pc;
  }
}

TEST(DecodedImage, RejectsUndecodableWord) {
  const sim::PlatformConfig config;
  sim::DecodedImage image(config.im_slots(), config.im_banks,
                          config.im_bank_slots, config.im_line_slots);
  const std::uint32_t bad_word = 0xFFFFFFFFu;  // invalid opcode bits
  const std::string error = image.load_encoded(0, {&bad_word, 1});
  EXPECT_NE(error.find("undecodable"), std::string::npos) << error;
}

TEST(DecodedImage, BankTableMatchesMappingRule) {
  // bank_of is defined for in-program slots, so cover the whole image with
  // a program before probing the mapping.
  const std::vector<isa::Instruction> filler(
      256, isa::Instruction{isa::Opcode::kHalt, 0, 0, 0, 0});
  {
    sim::DecodedImage lined(256, 8, 32, 16);  // line-interleaved
    lined.load(0, filler);
    for (std::uint32_t pc = 0; pc < 256; ++pc)
      EXPECT_EQ(lined.bank_of(pc), (pc / 16) % 8) << pc;
  }
  {
    sim::DecodedImage blocked(256, 8, 32, 0);  // pure block mapping
    blocked.load(0, filler);
    for (std::uint32_t pc = 0; pc < 256; ++pc)
      EXPECT_EQ(blocked.bank_of(pc), pc / 32) << pc;
  }
}

TEST(Platform, LoadImageRunsIdenticallyToLoadProgram) {
  const auto program = compile(kBarrierKernel);
  const auto config = sim::PlatformConfig::with_synchronizer();
  sim::Platform from_code(config);
  from_code.load_program(program);
  sim::Platform from_image(config);
  from_image.load_image(program.origin, program.image);
  const auto r1 = from_code.run(1'000'000);
  const auto r2 = from_image.run(1'000'000);
  EXPECT_TRUE(r1.ok());
  EXPECT_TRUE(r2.ok());
  EXPECT_EQ(r1.cycles, r2.cycles);
  expect_counters_equal(from_code.counters(), from_image.counters());
}

TEST(Platform, LoadImageThrowsOnBadWord) {
  sim::Platform platform(sim::PlatformConfig::with_synchronizer());
  const std::uint32_t bad_word = 0xFFFFFFFFu;
  EXPECT_THROW(platform.load_image(0, {&bad_word, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace ulpsync
