// Tests for the control-flow analysis and the automatic synchronization-
// point insertion pass (the paper's "automated during compilation" future
// work): CFG construction, dominators, loops, divergence analysis, balanced
// placement, and end-to-end equivalence of auto-instrumented kernels.

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "core/cfg.h"
#include "core/instrument.h"
#include "kernels/benchmark.h"
#include "sim/platform.h"

namespace ulpsync::core {
namespace {

assembler::Program compile(std::string_view source) {
  auto result = assembler::assemble(source);
  EXPECT_TRUE(result.ok()) << result.error_text();
  return std::move(result.program);
}

unsigned count_op(const assembler::Program& program, isa::Opcode op) {
  unsigned count = 0;
  for (const auto& instr : program.code) count += (instr.op == op);
  return count;
}

TEST(Cfg, StraightLineIsOneBlock) {
  const auto program = compile("movi r1, 1\nmovi r2, 2\nhalt\n");
  const auto cfg = analyze_program(program.code, 0);
  ASSERT_TRUE(cfg.ok()) << cfg.error;
  ASSERT_EQ(cfg.functions.size(), 1u);
  EXPECT_EQ(cfg.functions[0].blocks.size(), 1u);
  EXPECT_TRUE(cfg.functions[0].loops.empty());
}

TEST(Cfg, DiamondHasFourBlocksAndJoinPostDominates) {
  const auto program = compile(R"(
      cmpi r1, 0
      beq  else_arm
      movi r2, 1
      bra  join
  else_arm:
      movi r2, 2
  join:
      halt
  )");
  const auto cfg = analyze_program(program.code, 0);
  ASSERT_TRUE(cfg.ok());
  const auto& fn = cfg.functions[0];
  EXPECT_EQ(fn.blocks.size(), 4u);
  const auto branch_block = fn.block_of(1);
  const auto join_block = fn.block_of(5);
  EXPECT_EQ(fn.ipdom[branch_block], join_block);
  EXPECT_TRUE(fn.dominates(branch_block, join_block));
  EXPECT_TRUE(fn.post_dominates(join_block, branch_block));
}

TEST(Cfg, LoopDetection) {
  const auto program = compile(R"(
      movi r1, 10
  head:
      addi r1, r1, -1
      cmpi r1, 0
      bne  head
      halt
  )");
  const auto cfg = analyze_program(program.code, 0);
  ASSERT_TRUE(cfg.ok());
  const auto& fn = cfg.functions[0];
  ASSERT_EQ(fn.loops.size(), 1u);
  EXPECT_EQ(fn.loops[0].header, fn.block_of(1));
  EXPECT_TRUE(fn.loops[0].contains(fn.block_of(3)));
}

TEST(Cfg, FunctionsDiscoveredFromJalTargets) {
  const auto program = compile(R"(
      jal r7, func
      halt
  func:
      jr r7
  )");
  const auto cfg = analyze_program(program.code, 0);
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg.functions.size(), 2u);
}

TEST(Divergence, CoreIdDerivedBranchIsVarying) {
  const auto program = compile(R"(
      csrr r1, #0
      cmpi r1, 3
      blt  low
      movi r2, 1
  low:
      halt
  )");
  const auto cfg = analyze_program(program.code, 0);
  ASSERT_TRUE(cfg.ok());
  EXPECT_TRUE(cfg.functions[0].varying_branch[2]);
}

TEST(Divergence, ConstantLoopCounterIsUniform) {
  const auto program = compile(R"(
      movi r1, 8
  head:
      addi r1, r1, -1
      cmpi r1, 0
      bne  head
      halt
  )");
  const auto cfg = analyze_program(program.code, 0);
  ASSERT_TRUE(cfg.ok());
  EXPECT_FALSE(cfg.functions[0].varying_branch[3]);
}

TEST(Divergence, UniformAddressLoadIsUniform) {
  // A load from a constant address reads the same shared word everywhere.
  const auto program = compile(R"(
      ld   r1, [r0+0x40]
      cmpi r1, 5
      blt  out
      movi r2, 1
  out:
      halt
  )");
  const auto cfg = analyze_program(program.code, 0);
  ASSERT_TRUE(cfg.ok());
  EXPECT_FALSE(cfg.functions[0].varying_branch[2]);
}

TEST(Divergence, CoreIdIndexedLoadIsVarying) {
  const auto program = compile(R"(
      csrr r1, #0
      movi r2, 0x100
      ldx  r3, [r2+r1]
      cmpi r3, 5
      blt  out
      movi r4, 1
  out:
      halt
  )");
  const auto cfg = analyze_program(program.code, 0);
  ASSERT_TRUE(cfg.ok());
  EXPECT_TRUE(cfg.functions[0].varying_branch[4]);
}

TEST(AutoInstrument, WrapsVaryingDiamond) {
  const auto program = compile(R"(
      csrr r1, #0
      cmpi r1, 4
      blt  low
      movi r2, 1
      bra  join
  low:
      movi r2, 2
  join:
      movi r3, 3
      halt
  )");
  const auto result = auto_instrument(program, InstrumentOptions{});
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.regions.size(), 1u);
  EXPECT_EQ(result.regions[0].kind, InstrumentedRegion::Kind::kConditional);
  EXPECT_EQ(count_op(result.program, isa::Opcode::kSinc), 1u);
  EXPECT_EQ(count_op(result.program, isa::Opcode::kSdec), 1u);
  // SINC must precede the conditional branch.
  std::size_t sinc_at = 0, branch_at = 0;
  for (std::size_t i = 0; i < result.program.code.size(); ++i) {
    if (result.program.code[i].op == isa::Opcode::kSinc) sinc_at = i;
    if (result.program.code[i].op == isa::Opcode::kBlt) branch_at = i;
  }
  EXPECT_EQ(sinc_at + 1, branch_at);
}

TEST(AutoInstrument, LeavesUniformCodeAlone) {
  const auto program = compile(R"(
      movi r1, 8
  head:
      addi r1, r1, -1
      cmpi r1, 0
      bne  head
      halt
  )");
  const auto result = auto_instrument(program, InstrumentOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.regions.empty());
  EXPECT_EQ(result.program.code.size(), program.code.size());
}

TEST(AutoInstrument, WrapsDataDependentLoop) {
  // Loop trip count depends on per-core data -> pre-header SINC, exit SDEC.
  const auto program = compile(R"(
      csrr r1, #0
      addi r2, r1, 1
  head:
      addi r2, r2, -1
      cmpi r2, 0
      bne  head
      movi r3, 1
      halt
  )");
  const auto result = auto_instrument(program, InstrumentOptions{});
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.regions.size(), 1u);
  EXPECT_EQ(result.regions[0].kind, InstrumentedRegion::Kind::kLoop);
}

struct AutoRunCase {
  const char* name;
  kernels::BenchmarkKind kind;
};

class AutoInstrumentKernels : public ::testing::TestWithParam<AutoRunCase> {};

TEST_P(AutoInstrumentKernels, AutoInstrumentedKernelStillComputesCorrectly) {
  // The strongest property: take the *plain* kernel, let the pass insert
  // check-ins/check-outs automatically, run it on the synchronized design,
  // and verify the outputs are still bit-exact (balanced regions, no
  // deadlock) while lockstep improves versus the baseline.
  kernels::BenchmarkParams params;
  params.samples = 48;
  kernels::Benchmark benchmark(GetParam().kind, params);

  const auto instrumented = auto_instrument(benchmark.program(false),
                                            InstrumentOptions{});
  ASSERT_TRUE(instrumented.ok()) << instrumented.error;
  EXPECT_FALSE(instrumented.regions.empty());

  sim::Platform platform(benchmark.platform_config(true));
  platform.load_program(instrumented.program);
  benchmark.load_inputs(platform);
  const auto run = platform.run(100'000'000);
  ASSERT_TRUE(run.ok()) << run.to_string();
  EXPECT_EQ(benchmark.verify(platform), "");

  // And it must beat the baseline design running the plain kernel.
  const auto baseline = kernels::run_benchmark(benchmark, false);
  EXPECT_LT(platform.counters().cycles, baseline.counters.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, AutoInstrumentKernels,
    ::testing::Values(AutoRunCase{"mrpfltr", kernels::BenchmarkKind::kMrpfltr},
                      AutoRunCase{"sqrt32", kernels::BenchmarkKind::kSqrt32},
                      AutoRunCase{"mrpdln", kernels::BenchmarkKind::kMrpdln}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

TEST(AutoInstrument, SyncOpsBalanceDynamically) {
  kernels::BenchmarkParams params;
  params.samples = 32;
  kernels::Benchmark benchmark(kernels::BenchmarkKind::kSqrt32, params);
  const auto instrumented = auto_instrument(benchmark.program(false),
                                            InstrumentOptions{});
  ASSERT_TRUE(instrumented.ok());
  sim::Platform platform(benchmark.platform_config(true));
  platform.load_program(instrumented.program);
  benchmark.load_inputs(platform);
  ASSERT_TRUE(platform.run(100'000'000).ok());
  EXPECT_EQ(platform.sync_stats().checkins, platform.sync_stats().checkouts);
}

TEST(AutoInstrument, RespectsMaxSyncPoints) {
  kernels::BenchmarkParams params;
  params.samples = 16;
  kernels::Benchmark benchmark(kernels::BenchmarkKind::kMrpdln, params);
  InstrumentOptions options;
  options.max_sync_points = 0;
  const auto result = auto_instrument(benchmark.program(false), options);
  EXPECT_FALSE(result.ok());
}

TEST(AutoInstrument, OptionsDisableCategories) {
  const auto program = compile(R"(
      csrr r1, #0
      cmpi r1, 4
      blt  low
      movi r2, 1
      bra  join
  low:
      movi r2, 2
  join:
      halt
  )");
  InstrumentOptions options;
  options.instrument_conditionals = false;
  const auto result = auto_instrument(program, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.regions.empty());
}

TEST(AutoInstrumentGuards, SkipsJoinReachableFromOutside) {
  // The "join" is also the target of a jump from before the diamond, so a
  // check-out there would not balance: the pass must skip it.
  const auto program = compile(R"(
      csrr r1, #0
      cmpi r1, 6
      bge  join          ; outside path straight to the join
      cmpi r1, 4
      blt  low
      movi r2, 1
      bra  join
  low:
      movi r2, 2
  join:
      halt
  )");
  const auto result = auto_instrument(program, InstrumentOptions{});
  ASSERT_TRUE(result.ok());
  // The OUTER diamond (bge at 2) dominates the join and every predecessor,
  // so it is balanced and instrumented. The INNER diamond (blt at 4) shares
  // the same join without dominating its predecessors: it must be skipped.
  ASSERT_EQ(result.regions.size(), 1u);
  EXPECT_EQ(result.regions[0].checkin_before, 2u);
  EXPECT_EQ(result.regions[0].checkout_before, 8u);
  ASSERT_FALSE(result.skipped.empty());

  // Dynamic balance check: run it; every check-in must be checked out.
  sim::Platform platform(sim::PlatformConfig::with_synchronizer());
  platform.load_program(result.program);
  ASSERT_TRUE(platform.run(10'000).ok());
  EXPECT_EQ(platform.sync_stats().checkins, 8u);
  EXPECT_EQ(platform.sync_stats().checkouts, 8u);
}

TEST(AutoInstrumentGuards, SkipsLoopWithMultipleExitTargets) {
  const auto program = compile(R"(
      csrr r1, #0
      addi r2, r1, 3
  head:
      addi r2, r2, -1
      cmpi r2, 0
      beq  exit_a
      cmpi r2, 10
      bge  exit_b
      bra  head
  exit_a:
      movi r3, 1
      halt
  exit_b:
      movi r3, 2
      halt
  )");
  const auto result = auto_instrument(program, InstrumentOptions{});
  ASSERT_TRUE(result.ok());
  for (const auto& region : result.regions)
    EXPECT_NE(region.kind, InstrumentedRegion::Kind::kLoop);
  bool noted = false;
  for (const auto& note : result.skipped)
    noted |= note.find("multiple exit") != std::string::npos;
  EXPECT_TRUE(noted);
}

TEST(AutoInstrumentGuards, SkippedProgramStillRunsCorrectly) {
  // Even when every candidate is skipped, the rewritten program must be
  // the identity and still execute fine on the synchronized design.
  const auto program = compile(R"(
      csrr r1, #0
      cmpi r1, 6
      bge  join
      cmpi r1, 4
      blt  join
      movi r2, 1
  join:
      movi r3, 0x900
      stx  r1, [r3+r1]
      halt
  )");
  const auto result = auto_instrument(program, InstrumentOptions{});
  ASSERT_TRUE(result.ok());

  sim::PlatformConfig config;
  config.start_stagger_cycles = 0;
  sim::Platform platform(config);
  platform.load_program(result.program);
  ASSERT_TRUE(platform.run(10'000).ok());
  for (unsigned c = 0; c < 8; ++c) EXPECT_EQ(platform.dm_read(0x900 + c), c);
}

TEST(AutoInstrumentGuards, NestedUniformLoopWithVaryingDiamond) {
  // A varying diamond inside a uniform double loop: the diamond alone is
  // instrumented, and balance must hold across all iterations.
  const auto program = compile(R"(
      csrr r1, #0
      movi r6, 0
      movi r4, 3
  outer:
      movi r5, 4
  inner:
      add  r7, r4, r5
      and  r7, r7, r1
      cmpi r7, 1
      blt  even
      addi r6, r6, 1
  even:
      addi r5, r5, -1
      cmpi r5, 0
      bne  inner
      addi r4, r4, -1
      cmpi r4, 0
      bne  outer
      movi r3, 0x920
      stx  r6, [r3+r1]
      halt
  )");
  const auto instrumented = auto_instrument(program, InstrumentOptions{});
  ASSERT_TRUE(instrumented.ok()) << instrumented.error;
  ASSERT_EQ(instrumented.regions.size(), 1u);

  // Reference run (plain, baseline) vs instrumented (synchronized).
  sim::PlatformConfig base_config = sim::PlatformConfig::without_synchronizer();
  base_config.start_stagger_cycles = 0;
  sim::Platform reference(base_config);
  reference.load_program(program);
  ASSERT_TRUE(reference.run(100'000).ok());

  sim::Platform platform(sim::PlatformConfig::with_synchronizer());
  platform.load_program(instrumented.program);
  ASSERT_TRUE(platform.run(100'000).ok());
  for (unsigned c = 0; c < 8; ++c)
    EXPECT_EQ(platform.dm_read(0x920 + c), reference.dm_read(0x920 + c)) << c;
  EXPECT_EQ(platform.sync_stats().checkins, platform.sync_stats().checkouts);
  EXPECT_EQ(platform.sync_stats().checkins, 8u * 3 * 4)
      << "one check-in per core per inner iteration";
}

TEST(AutoInstrument, BranchTargetsRemappedCorrectly) {
  // A backward uniform loop surrounding a varying diamond: after insertion
  // the loop must still iterate the same number of times.
  const auto program = compile(R"(
      csrr r1, #0
      movi r2, 5
      movi r3, 0
  head:
      cmp  r1, r2
      bge  skip
      addi r3, r3, 1
  skip:
      addi r2, r2, -1
      cmpi r2, 0
      bne  head
      movi r4, 0x900
      stx  r3, [r4+r1]
      halt
  )");
  const auto instrumented = auto_instrument(program, InstrumentOptions{});
  ASSERT_TRUE(instrumented.ok()) << instrumented.error;

  sim::PlatformConfig config;
  config.start_stagger_cycles = 0;
  sim::Platform platform(config);
  platform.load_program(instrumented.program);
  const auto run = platform.run(100'000);
  ASSERT_TRUE(run.ok()) << run.to_string();
  // Core c increments r3 while c < r2 as r2 runs 5,4,3,2,1:
  // core 0 -> 5 iterations pass the test, core 4 -> 1, core 7 -> 0.
  EXPECT_EQ(platform.dm_read(0x900 + 0), 5);
  EXPECT_EQ(platform.dm_read(0x900 + 4), 1);
  EXPECT_EQ(platform.dm_read(0x900 + 7), 0);
}

}  // namespace
}  // namespace ulpsync::core
