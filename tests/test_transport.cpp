// The spool-transport layer (scenario/transport.h): filesystem vs TCP
// byte-identity, double-claim races, vanished-worker lease recovery,
// hash-gated part uploads, cost-model scheduling, and the one status
// schema both transports render.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "scenario/checkpoint_ring.h"
#include "scenario/engine.h"
#include "scenario/record.h"
#include "scenario/registry.h"
#include "scenario/replay.h"
#include "scenario/resilience.h"
#include "scenario/shard.h"
#include "scenario/transport.h"

namespace ulpsync::scenario {
namespace {

namespace fs = std::filesystem;

std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/transport_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<RunSpec> small_sweep_specs() {
  std::vector<RunSpec> specs;
  for (const unsigned samples : {8u, 12u, 16u, 24u}) {
    RunSpec spec;
    spec.workload = "sqrt32";
    spec.params.samples = samples;
    spec.max_cycles = 2'000'000;
    spec.design = DesignVariant::synchronized();
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::string single_process_csv(const std::vector<RunSpec>& specs) {
  const Engine engine(Registry::builtins());
  return to_csv(engine.run(specs));
}

std::uint64_t hash_text(const std::string& text) {
  return fnv1a64(
      {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
}

// --- line splitting ----------------------------------------------------------

TEST(Transport, SplitCompleteLinesDropsTornTail) {
  EXPECT_TRUE(split_complete_lines("").empty());
  EXPECT_TRUE(split_complete_lines("torn").empty());
  const auto lines = split_complete_lines("a\nb\ntorn");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
}

// --- claim races -------------------------------------------------------------

TEST(Transport, FsDoubleClaimHasOneWinner) {
  const std::string dir = scratch_dir("fs_race");
  const std::vector<RunSpec> specs = {small_sweep_specs()[0]};
  plan_spool(dir, specs, Registry::builtins(), {.shards = 1});

  FsTransport a(dir);
  FsTransport b(dir);
  const auto first = a.claim("worker-a");
  const auto second = b.claim("worker-b");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->kind, "bundle");
  EXPECT_FALSE(second.has_value());  // exactly one claimer wins
}

TEST(Transport, ConcurrentFsClaimsNeverOverlap) {
  const std::string dir = scratch_dir("fs_race_many");
  plan_spool(dir, small_sweep_specs(), Registry::builtins(), {.shards = 4});

  std::vector<std::vector<unsigned>> claimed(4);
  std::vector<std::thread> pool;
  for (unsigned w = 0; w < 4; ++w) {
    pool.emplace_back([&, w] {
      FsTransport transport(dir);
      while (const auto shard = transport.claim("w" + std::to_string(w))) {
        claimed[w].push_back(shard->id);
      }
    });
  }
  for (auto& thread : pool) thread.join();

  std::vector<unsigned> all;
  for (const auto& ids : claimed) all.insert(all.end(), ids.begin(), ids.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<unsigned>{0, 1, 2, 3}));  // each shard once
}

TEST(Transport, TcpDoubleClaimHasOneWinner) {
  const std::string dir = scratch_dir("tcp_race");
  const std::vector<RunSpec> specs = {small_sweep_specs()[0]};
  plan_spool(dir, specs, Registry::builtins(), {.shards = 1});

  SpoolServer server(dir);
  server.start();
  {
    TcpTransport a("127.0.0.1", server.port());
    TcpTransport b("127.0.0.1", server.port());
    const auto first = a.claim("worker-a");
    const auto second = b.claim("worker-b");
    ASSERT_TRUE(first.has_value());
    EXPECT_FALSE(second.has_value());
  }
  server.stop();
}

// --- vanished workers --------------------------------------------------------

TEST(Transport, ServerRequeuesExpiredLeaseAndFencesZombie) {
  const std::string dir = scratch_dir("lease_expiry");
  const std::vector<RunSpec> specs = {small_sweep_specs()[0]};
  plan_spool(dir, specs, Registry::builtins(), {.shards = 1});

  SpoolServer::Options options;
  options.lease_seconds = 0.05;  // expire almost immediately
  SpoolServer server(dir, options);
  server.start();
  {
    TcpTransport zombie("127.0.0.1", server.port());
    const auto claim = zombie.claim("zombie");
    ASSERT_TRUE(claim.has_value());
    zombie.append_row(claim->id, "row-from-zombie");
    std::this_thread::sleep_for(std::chrono::milliseconds(150));

    // A healthy worker claims after the lease lapsed: the shard re-queues
    // and the zombie's complete rows come along for adoption.
    TcpTransport healthy("127.0.0.1", server.port());
    const auto reclaim = healthy.claim("healthy");
    ASSERT_TRUE(reclaim.has_value());
    EXPECT_EQ(reclaim->id, claim->id);
    ASSERT_EQ(reclaim->rows.size(), 1u);
    EXPECT_EQ(reclaim->rows[0], "row-from-zombie");

    // The zombie is fenced: its lease is gone, so its writes bounce
    // instead of corrupting the new claimer's part.
    EXPECT_THROW(zombie.append_row(claim->id, "late-row"),
                 std::runtime_error);
  }
  server.stop();
}

TEST(Transport, ServerRequeuesOnDisconnect) {
  const std::string dir = scratch_dir("disconnect");
  const std::vector<RunSpec> specs = {small_sweep_specs()[0]};
  plan_spool(dir, specs, Registry::builtins(), {.shards = 1});

  SpoolServer server(dir);
  server.start();
  {
    auto worker =
        std::make_unique<TcpTransport>("127.0.0.1", server.port());
    ASSERT_TRUE(worker->claim("doomed").has_value());
    worker.reset();  // connection drops with the claim still open

    // The server notices the disconnect and re-queues; poll briefly since
    // the release runs on the connection thread.
    TcpTransport next("127.0.0.1", server.port());
    std::optional<ClaimedShard> reclaim;
    for (int attempt = 0; attempt < 100 && !reclaim; ++attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      reclaim = next.claim("successor");
    }
    ASSERT_TRUE(reclaim.has_value());
    EXPECT_EQ(reclaim->id, 0u);
  }
  server.stop();
}

TEST(Transport, FsAdoptOrphansRequeuesDeadClaims) {
  const std::string dir = scratch_dir("fs_adopt");
  const std::vector<RunSpec> specs = {small_sweep_specs()[0]};
  plan_spool(dir, specs, Registry::builtins(), {.shards = 1});

  {
    FsTransport dead(dir);
    const auto claim = dead.claim("dead-worker");
    ASSERT_TRUE(claim.has_value());
    dead.append_row(claim->id, "partial-row");
    // ... SIGKILL: the claim stays in claimed/, the partial stays put.
  }
  FsTransport next(dir);
  EXPECT_FALSE(next.claim("too-early").has_value());  // still claimed
  EXPECT_EQ(next.adopt_orphans(), 1u);
  const auto reclaim = next.claim("successor");
  ASSERT_TRUE(reclaim.has_value());
  ASSERT_EQ(reclaim->rows.size(), 1u);
  EXPECT_EQ(reclaim->rows[0], "partial-row");
}

// --- hash-gated uploads ------------------------------------------------------

TEST(Transport, TruncatedUploadRejectedThenRecovers) {
  const std::string dir = scratch_dir("truncated_upload");
  const std::vector<RunSpec> specs = {small_sweep_specs()[0]};
  plan_spool(dir, specs, Registry::builtins(), {.shards = 1});

  SpoolServer server(dir);
  server.start();
  {
    TcpTransport worker("127.0.0.1", server.port());
    const auto claim = worker.claim("uploader");
    ASSERT_TRUE(claim.has_value());
    worker.append_row(claim->id, "row-one");
    worker.append_row(claim->id, "row-two");

    // The worker believes the part holds three rows (one never arrived):
    // the content hash disagrees with what the spool accumulated, so DONE
    // is rejected and the part stays partial.
    EXPECT_THROW(
        worker.complete(claim->id,
                        hash_text("row-one\nrow-two\nrow-lost\n")),
        std::runtime_error);
    EXPECT_FALSE(fs::exists(dir + "/parts/part-0000.csv"));

    // The claim survived the failed upload: send the missing row and
    // finalize with the true hash.
    worker.append_row(claim->id, "row-lost");
    worker.complete(claim->id, hash_text("row-one\nrow-two\nrow-lost\n"));
    EXPECT_TRUE(fs::exists(dir + "/parts/part-0000.csv"));
  }
  server.stop();
}

TEST(Transport, TcpRejectsRowForUnleasedShard) {
  const std::string dir = scratch_dir("unleased_row");
  const std::vector<RunSpec> specs = {small_sweep_specs()[0]};
  plan_spool(dir, specs, Registry::builtins(), {.shards = 1});

  SpoolServer server(dir);
  server.start();
  {
    TcpTransport worker("127.0.0.1", server.port());
    ASSERT_TRUE(worker.claim("w").has_value());
    // Unleased shard ids bounce too.
    EXPECT_THROW(worker.append_row(7, "row"), std::runtime_error);
  }
  server.stop();
}

// --- byte identity across transports ----------------------------------------

TEST(Transport, TcpWorkersMergeByteIdenticalToSingleProcess) {
  const std::string dir = scratch_dir("tcp_identity");
  const std::vector<RunSpec> specs = small_sweep_specs();
  const std::string expected = single_process_csv(specs);
  plan_spool(dir, specs, Registry::builtins(), {.shards = 3});

  SpoolServer server(dir);
  server.start();
  std::vector<std::thread> pool;
  for (unsigned w = 0; w < 2; ++w) {
    pool.emplace_back([&, w] {
      TcpTransport transport("127.0.0.1", server.port());
      WorkOptions options;
      options.worker_id = "tcp-" + std::to_string(w);
      work_spool_transport(transport, Registry::builtins(), options);
    });
  }
  for (auto& worker : pool) worker.join();

  TcpTransport merger("127.0.0.1", server.port());
  EXPECT_EQ(merge_spool_transport(merger), expected);
  // The filesystem view of the same spool merges to the same bytes.
  EXPECT_EQ(merge_spool(dir), expected);
  server.stop();
}

TEST(Transport, CampaignOverTcpMatchesSingleProcess) {
  const std::string dir = scratch_dir("tcp_campaign");
  RunSpec spec;
  spec.workload = "sleepgen";
  spec.params.samples = 12;
  spec.max_cycles = 3'000'000;
  spec.design = DesignVariant::synchronized();
  RecordOutcome outcome = record_one(spec, Registry::builtins());
  ASSERT_TRUE(outcome.record.ok()) << outcome.record.verify_error;

  CampaignConfig config;
  config.models = {ErrorModel::kDmSingle, ErrorModel::kIm};
  config.count = 2;
  config.seed = 7;
  const std::string expected = campaign_csv(
      run_campaign(outcome.recorded, Registry::builtins(), config, 2));

  plan_campaign_spool(dir, outcome.recorded, config, Registry::builtins(),
                      {.shards = 2});
  SpoolServer server(dir);
  server.start();
  {
    TcpTransport worker("127.0.0.1", server.port());
    CampaignWorkOptions options;
    options.worker_id = "campaign-tcp";
    options.jobs = 2;
    work_campaign_transport(worker, Registry::builtins(), options);

    TcpTransport merger("127.0.0.1", server.port());
    EXPECT_TRUE(is_campaign_manifest(merger.manifest_text()));
    EXPECT_EQ(merge_campaign_transport(merger), expected);
  }
  EXPECT_EQ(merge_campaign_spool(dir), expected);
  server.stop();
}

// --- cost-model scheduling ---------------------------------------------------

TEST(CostModel, AbsorbRejectsForeignLinesWithoutPoisoning) {
  CostModel model;
  EXPECT_FALSE(absorb_cost_line(model, ""));
  EXPECT_FALSE(absorb_cost_line(model, "not a cost line"));
  EXPECT_FALSE(absorb_cost_line(model, "cost zz sqrt32 10 0.5"));
  EXPECT_FALSE(absorb_cost_line(model, "cost 0123456789abcdef sqrt32 10 -1"));
  EXPECT_TRUE(model.empty());
  EXPECT_TRUE(
      absorb_cost_line(model, "cost 0123456789abcdef sqrt32 10 2.5e-3"));
  EXPECT_FALSE(model.empty());
  EXPECT_EQ(model.by_spec.size(), 1u);
  EXPECT_EQ(model.by_workload.at("sqrt32").runs, 1u);
}

TEST(CostModel, PredictFallsBackSpecThenWorkloadThenUniform) {
  RunSpec seen = small_sweep_specs()[0];
  CostModel model;
  model.add(spec_cost_key(seen), seen.workload, 1'000, 0.25);
  model.add(spec_cost_key(seen), seen.workload, 1'000, 0.75);

  // Exact identity: the mean of its own measurements.
  EXPECT_DOUBLE_EQ(model.predict(seen), 0.5);

  // Unseen spec of a seen workload: seconds-per-cycle rate times budget.
  RunSpec sibling = seen;
  sibling.params.samples += 1;
  sibling.max_cycles = 4'000;
  EXPECT_DOUBLE_EQ(model.predict(sibling), 0.5 / 1'000 * 4'000);

  // Unseen workload: uniform.
  RunSpec foreign = seen;
  foreign.workload = "mrpfltr";
  EXPECT_DOUBLE_EQ(model.predict(foreign), 1.0);
}

TEST(CostModel, EmptyModelKeepsThePlanByteIdentical) {
  const std::vector<RunSpec> specs = small_sweep_specs();
  const std::string plain = scratch_dir("plan_plain");
  const std::string costed = scratch_dir("plan_empty_costs");
  plan_spool(plain, specs, Registry::builtins(), {.shards = 3});
  SpoolOptions options;
  options.shards = 3;
  options.costs = CostModel{};  // explicit empty model
  plan_spool(costed, specs, Registry::builtins(), options);
  EXPECT_EQ(read_file_bytes(plain + "/MANIFEST"),
            read_file_bytes(costed + "/MANIFEST"));
}

TEST(CostModel, SkewedCostsResizeShardsAndMergeStaysIdentical) {
  // Three cheap specs and one 100x-heavier one: count-balancing splits
  // 2/2, cost-balancing isolates the heavy spec (and numbers its shard
  // first so workers start the long pole immediately).
  std::vector<RunSpec> specs = small_sweep_specs();
  CostModel model;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const double wall = i == 2 ? 1.0 : 0.01;
    model.add(spec_cost_key(specs[i]), specs[i].workload, 1'000, wall);
  }

  const std::string plain = scratch_dir("plan_uniform");
  const std::string costed = scratch_dir("plan_costed");
  plan_spool(plain, specs, Registry::builtins(), {.shards = 2});
  SpoolOptions options;
  options.shards = 2;
  options.costs = model;
  plan_spool(costed, specs, Registry::builtins(), options);

  const auto plain_manifest = parse_spool_manifest_text(
      std::string(reinterpret_cast<const char*>(
                      read_file_bytes(plain + "/MANIFEST").data()),
                  read_file_bytes(plain + "/MANIFEST").size()),
      "plain");
  const auto costed_manifest = parse_spool_manifest_text(
      std::string(reinterpret_cast<const char*>(
                      read_file_bytes(costed + "/MANIFEST").data()),
                  read_file_bytes(costed + "/MANIFEST").size()),
      "costed");
  ASSERT_EQ(plain_manifest.shards.size(), 2u);
  ASSERT_EQ(costed_manifest.shards.size(), 2u);
  EXPECT_EQ(plain_manifest.shards[0].specs, 2u);
  EXPECT_EQ(plain_manifest.shards[1].specs, 2u);
  // The heavy spec sits alone on shard 0 (heaviest-first numbering).
  EXPECT_EQ(costed_manifest.shards[0].specs, 1u);
  EXPECT_EQ(costed_manifest.shards[1].specs, 3u);

  // Shard membership never touches merged bytes.
  FsTransport worker(costed);
  WorkOptions work_options;
  work_options.worker_id = "cost-worker";
  work_spool_transport(worker, Registry::builtins(), work_options);
  EXPECT_EQ(merge_spool(costed), single_process_csv(specs));
}

TEST(CostModel, WorkersFeedCostsBackThroughTheSpool) {
  const std::string dir = scratch_dir("cost_feedback");
  const std::vector<RunSpec> specs = small_sweep_specs();
  plan_spool(dir, specs, Registry::builtins(), {.shards = 2});
  FsTransport transport(dir);
  WorkOptions options;
  options.worker_id = "feedback";
  work_spool_transport(transport, Registry::builtins(), options);

  const CostModel model = load_cost_model({dir});
  EXPECT_EQ(model.by_spec.size(), specs.size());
  for (const RunSpec& spec : specs) {
    EXPECT_TRUE(model.by_spec.count(spec_cost_key(spec)) == 1)
        << "spec missing from the fed-back cost model";
  }
}

// --- status schema -----------------------------------------------------------

TEST(Transport, StatusRoundTripsAndRendersJson) {
  const std::string dir = scratch_dir("status");
  plan_spool(dir, small_sweep_specs(), Registry::builtins(), {.shards = 2});

  FsTransport transport(dir);
  {
    const auto claim = transport.claim("status-worker");
    ASSERT_TRUE(claim.has_value());
    transport.append_row(claim->id, "one-row");
  }
  const TransportStatus status = transport.status();
  EXPECT_FALSE(status.campaign);
  EXPECT_EQ(status.spool.specs, 4u);
  EXPECT_EQ(status.queue_depth, 1u);
  EXPECT_EQ(status.rows_done, 1u);

  // Wire round-trip (what STATUS serves) preserves every field.
  const TransportStatus parsed =
      parse_transport_status(serialize_transport_status(status));
  EXPECT_EQ(parsed.campaign, status.campaign);
  EXPECT_EQ(parsed.spool.fingerprint, status.spool.fingerprint);
  EXPECT_EQ(parsed.spool.specs, status.spool.specs);
  EXPECT_EQ(parsed.rows_done, status.rows_done);
  EXPECT_EQ(parsed.queue_depth, status.queue_depth);
  ASSERT_EQ(parsed.spool.shards.size(), status.spool.shards.size());
  for (std::size_t i = 0; i < parsed.spool.shards.size(); ++i) {
    EXPECT_EQ(parsed.spool.shards[i].state, status.spool.shards[i].state);
    EXPECT_EQ(parsed.spool.shards[i].owner, status.spool.shards[i].owner);
    EXPECT_EQ(parsed.spool.shards[i].partial_rows,
              status.spool.shards[i].partial_rows);
  }

  // The JSON schema: one shape for both transports.
  const std::string json = status_json(status);
  EXPECT_NE(json.find("\"kind\": \"sweep\""), std::string::npos);
  EXPECT_NE(json.find("\"rows_done\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"complete\": false"), std::string::npos);
  EXPECT_NE(json.find("\"eta_seconds\": null"), std::string::npos);
  EXPECT_NE(json.find("\"owner\": \"status-worker\""), std::string::npos);
}

}  // namespace
}  // namespace ulpsync::scenario
