// Tests for the lockstep analyzer.

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "core/lockstep.h"
#include "sim/platform.h"

namespace ulpsync::core {
namespace {

assembler::Program compile(std::string_view source) {
  auto result = assembler::assemble(source);
  EXPECT_TRUE(result.ok()) << result.error_text();
  return std::move(result.program);
}

sim::PlatformConfig config_no_stagger() {
  auto config = sim::PlatformConfig::with_synchronizer();
  config.start_stagger_cycles = 0;
  return config;
}

TEST(LockstepAnalyzer, FullLockstepOnStraightLineCode) {
  sim::Platform platform(config_no_stagger());
  platform.load_program(compile(R"(
      movi r1, 1
      movi r2, 2
      movi r3, 3
      movi r4, 4
      halt
  )"));
  LockstepAnalyzer analyzer;
  analyzer.attach(platform);
  ASSERT_TRUE(platform.run(100).ok());
  const auto& metrics = analyzer.metrics();
  EXPECT_GT(metrics.lockstep_fraction(), 0.6);
  EXPECT_EQ(metrics.pc_group_histogram[2], 0u) << "never two PC groups";
  EXPECT_NEAR(metrics.mean_pc_groups(), 1.0, 1e-9);
}

TEST(LockstepAnalyzer, DivergenceShowsMultipleGroups) {
  auto config = config_no_stagger();
  config.features = sim::SyncFeatures::disabled();
  sim::Platform platform(config);
  platform.load_program(compile(R"(
      csrr r1, #0
      cmpi r1, 0
      beq  a
      movi r2, 1
      movi r3, 1
      movi r4, 1
      halt
  a:
      movi r2, 2
      movi r3, 2
      movi r4, 2
      halt
  )"));
  LockstepAnalyzer analyzer;
  analyzer.attach(platform);
  ASSERT_TRUE(platform.run(1000).ok());
  const auto& metrics = analyzer.metrics();
  EXPECT_GT(metrics.pc_group_histogram[2], 0u);
  EXPECT_GT(metrics.mean_pc_groups(), 1.0);
}

TEST(LockstepAnalyzer, ResetClearsMetrics) {
  sim::Platform platform(config_no_stagger());
  platform.load_program(compile("halt\n"));
  LockstepAnalyzer analyzer;
  analyzer.attach(platform);
  (void)platform.run(10);
  EXPECT_GT(analyzer.metrics().observed_cycles, 0u);
  analyzer.reset();
  EXPECT_EQ(analyzer.metrics().observed_cycles, 0u);
}

}  // namespace
}  // namespace ulpsync::core
