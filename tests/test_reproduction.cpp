// Reproduction regression tests: pin the paper-facing results so that
// refactoring the simulator or the kernels cannot silently break the
// headline numbers. Tolerances are deliberately band-shaped (the paper's
// own reporting granularity), not point values.

#include <gtest/gtest.h>

#include "kernels/benchmark.h"
#include "power/model.h"
#include "power/scaling.h"
#include "power/sweep.h"

namespace ulpsync {
namespace {

struct Characterized {
  kernels::BenchmarkRun run;
  power::DesignCharacterization character;
};

Characterized run_and_characterize(kernels::BenchmarkKind kind,
                                   bool with_sync, unsigned samples = 192) {
  kernels::BenchmarkParams params;
  params.samples = samples;
  kernels::Benchmark benchmark(kind, params);
  Characterized out;
  out.run = kernels::run_benchmark(benchmark, with_sync);
  EXPECT_TRUE(out.run.result.ok());
  EXPECT_EQ(out.run.verify_error, "");
  out.character = power::characterize(
      with_sync ? power::EnergyParams::synchronized()
                : power::EnergyParams::baseline(),
      out.run.counters, out.run.sync_stats, out.run.useful_ops);
  return out;
}

class ReproductionBands
    : public ::testing::TestWithParam<kernels::BenchmarkKind> {};

TEST_P(ReproductionBands, OpsPerCycleWithinPaperBands) {
  const auto baseline = run_and_characterize(GetParam(), false);
  const auto synced = run_and_characterize(GetParam(), true);
  // Paper Section V-B: 1.1..2.0 without, 2.5..4.0 with (we allow a little
  // slack around the published bands).
  EXPECT_GE(baseline.character.ops_per_cycle, 0.9);
  EXPECT_LE(baseline.character.ops_per_cycle, 2.2);
  EXPECT_GE(synced.character.ops_per_cycle, 2.5);
  EXPECT_LE(synced.character.ops_per_cycle, 4.1);
}

TEST_P(ReproductionBands, SpeedupRoughlyTwoFold) {
  const auto baseline = run_and_characterize(GetParam(), false);
  const auto synced = run_and_characterize(GetParam(), true);
  const double speedup = static_cast<double>(baseline.run.counters.cycles) /
                         static_cast<double>(synced.run.counters.cycles);
  // Paper: up to 2.4x; per-benchmark 1.86x..2.37x.
  EXPECT_GE(speedup, 1.7);
  EXPECT_LE(speedup, 2.7);
}

TEST_P(ReproductionBands, ImAccessReductionAtLeastPaperLevel) {
  const auto baseline = run_and_characterize(GetParam(), false);
  const auto synced = run_and_characterize(GetParam(), true);
  const double per_op_wo =
      static_cast<double>(baseline.run.counters.im_bank_accesses) /
      static_cast<double>(baseline.run.useful_ops);
  const double per_op_with =
      static_cast<double>(synced.run.counters.im_bank_accesses) /
      static_cast<double>(synced.run.useful_ops);
  // Paper: up to 60% fewer IM accesses. Ours is at least that.
  EXPECT_GE(1.0 - per_op_with / per_op_wo, 0.55);
}

TEST_P(ReproductionBands, SynchronizerUnderTwoPercentOfPower) {
  const auto synced = run_and_characterize(GetParam(), true);
  const auto& energy = synced.character.energy;
  EXPECT_LT(energy.synchronizer_pj / energy.total_pj(), 0.02);
}

TEST_P(ReproductionBands, VoltageScaledSavingInPaperRange) {
  const auto baseline = run_and_characterize(GetParam(), false);
  const auto synced = run_and_characterize(GetParam(), true);
  const power::VoltageScaling scaling{power::VoltageParams{}};
  const power::WorkloadSweep sweep_wo(baseline.character, scaling);
  const power::WorkloadSweep sweep_with(synced.character, scaling);
  // Compare at the baseline's 75% point (inside both feasible ranges),
  // mirroring the paper's highlighted workloads.
  const double workload = sweep_wo.max_mops() * 0.75;
  const auto p_wo = sweep_wo.at(workload);
  const auto p_with = sweep_with.at(workload);
  ASSERT_TRUE(p_wo && p_with);
  const double saving =
      1.0 - p_with->breakdown.total_mw() / p_wo->breakdown.total_mw();
  // Paper: 55%..64% at the highlighted points.
  EXPECT_GE(saving, 0.45);
  EXPECT_LE(saving, 0.75);
}

TEST_P(ReproductionBands, MaxWorkloadRoughlyDoubles) {
  const auto baseline = run_and_characterize(GetParam(), false);
  const auto synced = run_and_characterize(GetParam(), true);
  const power::VoltageScaling scaling{power::VoltageParams{}};
  const double ratio = power::WorkloadSweep(synced.character, scaling).max_mops() /
                       power::WorkloadSweep(baseline.character, scaling).max_mops();
  // Fig. 3 endpoints: 211/89=2.4, 290/156=1.9, 336/167=2.0.
  EXPECT_GE(ratio, 1.7);
  EXPECT_LE(ratio, 2.7);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ReproductionBands,
                         ::testing::ValuesIn(kernels::kAllBenchmarks),
                         [](const auto& param_info) {
                           return std::string(kernels::benchmark_name(param_info.param));
                         });

TEST(ReproductionTable1, ComponentPowersAtEightMops) {
  // Table I at 8 MOps/s, 1.2 V: per-component power ranges across the three
  // benchmarks. We assert our measured values against slightly widened
  // paper ranges (the DM/D-Xbar rows for SQRT32 are a documented deviation:
  // our sqrt kernel is register-resident, see EXPERIMENTS.md).
  struct Range { double lo, hi; };
  const double workload = 8.0;

  for (auto kind : kernels::kAllBenchmarks) {
    const auto baseline = run_and_characterize(kind, false);
    const auto synced = run_and_characterize(kind, true);
    auto at_workload = [&](const Characterized& design) {
      const double f = workload / design.character.ops_per_cycle;
      return power::breakdown_at(design.character.energy, f, 1.0, 0.0);
    };
    const auto b_wo = at_workload(baseline);
    const auto b_with = at_workload(synced);

    // Cores: 0.14 / 0.16 mW (exact by calibration).
    EXPECT_NEAR(b_wo.cores_mw, 0.14, 0.01);
    EXPECT_NEAR(b_with.cores_mw, 0.16, 0.01);
    // IM: 0.20..0.36 -> 0.09..0.15 (we allow 0.04 widening on the floor).
    EXPECT_GE(b_wo.im_mw, 0.20);
    EXPECT_LE(b_wo.im_mw, 0.36);
    EXPECT_GE(b_with.im_mw, 0.05);
    EXPECT_LE(b_with.im_mw, 0.15);
    // Clock tree halves (paper: 2x saving).
    EXPECT_GT(b_wo.clock_tree_mw / b_with.clock_tree_mw, 1.8);
    // Totals: the paper's 0.64..0.94 -> 0.47..0.58 bands, widened low.
    EXPECT_GE(b_wo.dynamic_mw(), 0.55);
    EXPECT_LE(b_wo.dynamic_mw(), 0.94);
    EXPECT_GE(b_with.dynamic_mw(), 0.30);
    EXPECT_LE(b_with.dynamic_mw(), 0.58);
    // Dynamic saving without voltage scaling: paper "up to 38%".
    const double saving = 1.0 - b_with.dynamic_mw() / b_wo.dynamic_mw();
    EXPECT_GE(saving, 0.25);
    EXPECT_LE(saving, 0.50);
  }
}

TEST(ReproductionDm, MorphologyKernelsDmIncreaseUnderTenPercent) {
  for (auto kind : {kernels::BenchmarkKind::kMrpfltr,
                    kernels::BenchmarkKind::kMrpdln}) {
    const auto baseline = run_and_characterize(kind, false);
    const auto synced = run_and_characterize(kind, true);
    auto dm_per_op = [](const Characterized& design) {
      return static_cast<double>(design.run.counters.dm_bank_accesses +
                                 design.run.sync_stats.dm_accesses) /
             static_cast<double>(design.run.useful_ops);
    };
    const double increase = dm_per_op(synced) / dm_per_op(baseline) - 1.0;
    EXPECT_LT(increase, 0.10) << kernels::benchmark_name(kind);
    EXPECT_GE(increase, 0.0) << kernels::benchmark_name(kind);
  }
}

TEST(ReproductionFig3, EndpointPowersMatchPaperScale) {
  // The Fig. 3 curve endpoints (max workload at 1.2 V): the paper reports
  // 10.46..20.09 mW across benchmarks/designs; our absolute scale must sit
  // in the same regime (it is calibrated via Table I, so this is a real
  // cross-check, not a tautology).
  const power::VoltageScaling scaling{power::VoltageParams{}};
  for (auto kind : kernels::kAllBenchmarks) {
    for (const bool with_sync : {false, true}) {
      const auto design = run_and_characterize(kind, with_sync);
      const power::WorkloadSweep sweep(design.character, scaling);
      const auto endpoint = sweep.at(sweep.max_mops());
      ASSERT_TRUE(endpoint.has_value());
      EXPECT_GE(endpoint->breakdown.total_mw(), 7.0);
      EXPECT_LE(endpoint->breakdown.total_mw(), 22.0);
      EXPECT_NEAR(endpoint->voltage, 1.2, 1e-6);
    }
  }
}

TEST(ReproductionScaling, ResultsStableAcrossProblemSizes) {
  // The bands must not be an artifact of one problem size.
  for (unsigned samples : {96u, 160u, 256u}) {
    const auto baseline =
        run_and_characterize(kernels::BenchmarkKind::kSqrt32, false, samples);
    const auto synced =
        run_and_characterize(kernels::BenchmarkKind::kSqrt32, true, samples);
    const double speedup = static_cast<double>(baseline.run.counters.cycles) /
                           static_cast<double>(synced.run.counters.cycles);
    EXPECT_GE(speedup, 1.7) << samples;
    EXPECT_LE(speedup, 2.7) << samples;
  }
}

}  // namespace
}  // namespace ulpsync
