// Unit tests for the power model: voltage/frequency scaling, per-event
// energy accounting, breakdown arithmetic, and the workload sweep engine.

#include <gtest/gtest.h>

#include "kernels/benchmark.h"
#include "power/model.h"
#include "power/scaling.h"
#include "power/sweep.h"

namespace ulpsync::power {
namespace {

TEST(VoltageScaling, NominalFrequencyFromCriticalPath) {
  VoltageScaling scaling{VoltageParams{}};
  EXPECT_NEAR(scaling.nominal_fmax_mhz(), 83.33, 0.01);
  EXPECT_NEAR(scaling.fmax_mhz(1.2), 83.33, 0.01);
}

TEST(VoltageScaling, FmaxMonotonicInVoltage) {
  VoltageScaling scaling{VoltageParams{}};
  double previous = 0.0;
  for (double v = 0.55; v <= 1.2; v += 0.05) {
    const double f = scaling.fmax_mhz(v);
    EXPECT_GT(f, previous);
    previous = f;
  }
}

TEST(VoltageScaling, BelowThresholdNoFrequency) {
  VoltageScaling scaling{VoltageParams{}};
  EXPECT_EQ(scaling.fmax_mhz(0.5), 0.0);
  EXPECT_EQ(scaling.fmax_mhz(0.3), 0.0);
}

TEST(VoltageScaling, MinVoltageInvertsFmax) {
  VoltageScaling scaling{VoltageParams{}};
  for (double f : {5.0, 20.0, 40.0, 60.0, 83.0}) {
    const auto v = scaling.min_voltage_for(f);
    ASSERT_TRUE(v.has_value()) << f;
    EXPECT_GE(scaling.fmax_mhz(*v), f * 0.999);
    // Just below, the frequency must no longer be achievable (tight bound).
    EXPECT_LT(scaling.fmax_mhz(*v - 0.01), f);
  }
}

TEST(VoltageScaling, OverNominalFrequencyInfeasible) {
  VoltageScaling scaling{VoltageParams{}};
  EXPECT_FALSE(scaling.min_voltage_for(90.0).has_value());
  EXPECT_TRUE(scaling.min_voltage_for(83.0).has_value());
}

TEST(VoltageScaling, DynamicScaleIsQuadratic) {
  VoltageScaling scaling{VoltageParams{}};
  EXPECT_DOUBLE_EQ(scaling.dynamic_scale(1.2), 1.0);
  EXPECT_DOUBLE_EQ(scaling.dynamic_scale(0.6), 0.25);
}

TEST(VoltageScaling, LeakageShrinksWithVoltage) {
  VoltageScaling scaling{VoltageParams{}};
  EXPECT_GT(scaling.leakage_mw(1.2), scaling.leakage_mw(0.8));
  EXPECT_GT(scaling.leakage_mw(0.8), 0.0);
}

sim::EventCounters fake_counters() {
  sim::EventCounters counters;
  counters.cycles = 1000;
  counters.retired_ops = 2000;
  counters.core_active_cycles = 4000;
  counters.im_bank_accesses = 500;
  counters.im_fetches_delivered = 2000;
  counters.dm_bank_accesses = 300;
  return counters;
}

TEST(EnergyModel, ChargesEveryComponent) {
  core::SynchronizerStats sync_stats;
  sync_stats.rmw_ops = 100;
  sync_stats.dm_accesses = 200;
  const auto energy = energy_per_cycle(EnergyParams::synchronized(),
                                       fake_counters(), sync_stats);
  EXPECT_GT(energy.cores_pj, 0.0);
  EXPECT_GT(energy.im_pj, 0.0);
  EXPECT_GT(energy.dm_pj, 0.0);
  EXPECT_GT(energy.dxbar_pj, 0.0);
  EXPECT_GT(energy.ixbar_pj, 0.0);
  EXPECT_GT(energy.synchronizer_pj, 0.0);
  EXPECT_GT(energy.clock_tree_pj, 0.0);
  EXPECT_NEAR(energy.total_pj(),
              energy.cores_pj + energy.im_pj + energy.dm_pj + energy.dxbar_pj +
                  energy.ixbar_pj + energy.synchronizer_pj + energy.clock_tree_pj,
              1e-9);
}

TEST(EnergyModel, BaselineHasNoSynchronizerCost) {
  const auto energy = energy_per_cycle(EnergyParams::baseline(),
                                       fake_counters(), {});
  EXPECT_EQ(energy.synchronizer_pj, 0.0);
}

TEST(EnergyModel, SyncDmAccessesChargedToDm) {
  core::SynchronizerStats with_sync_traffic;
  with_sync_traffic.dm_accesses = 300;  // as many again as the D-Xbar's
  const auto base = energy_per_cycle(EnergyParams::baseline(), fake_counters(), {});
  const auto more = energy_per_cycle(EnergyParams::baseline(), fake_counters(),
                                     with_sync_traffic);
  EXPECT_NEAR(more.dm_pj, 2.0 * base.dm_pj, 1e-9);
}

TEST(EnergyModel, BreakdownScalesWithFrequencyAndVoltage) {
  EnergyPerCycle energy;
  energy.cores_pj = 10.0;
  energy.clock_tree_pj = 5.0;
  const auto at_full = breakdown_at(energy, 80.0, 1.0, 0.1);
  EXPECT_NEAR(at_full.cores_mw, 0.8, 1e-9);
  EXPECT_NEAR(at_full.clock_tree_mw, 0.4, 1e-9);
  EXPECT_NEAR(at_full.leakage_mw, 0.1, 1e-9);
  EXPECT_NEAR(at_full.total_mw(), 1.3, 1e-9);
  const auto scaled = breakdown_at(energy, 40.0, 0.25, 0.0);
  EXPECT_NEAR(scaled.dynamic_mw(), at_full.dynamic_mw() / 8.0, 1e-9);
}

TEST(Sweep, MaxWorkloadIsIpcTimesNominalClock) {
  DesignCharacterization design;
  design.ops_per_cycle = 3.0;
  design.energy.cores_pj = 10.0;
  WorkloadSweep sweep(design, VoltageScaling{VoltageParams{}});
  EXPECT_NEAR(sweep.max_mops(), 3.0 * 83.33, 0.1);
}

TEST(Sweep, PowerMonotoneInWorkload) {
  DesignCharacterization design;
  design.ops_per_cycle = 3.0;
  design.energy.cores_pj = 10.0;
  design.energy.clock_tree_pj = 16.0;
  WorkloadSweep sweep(design, VoltageScaling{VoltageParams{}});
  double previous = 0.0;
  for (double w = 1.0; w < sweep.max_mops(); w *= 1.5) {
    const auto point = sweep.at(w);
    ASSERT_TRUE(point.has_value());
    EXPECT_GT(point->breakdown.total_mw(), previous);
    previous = point->breakdown.total_mw();
  }
}

TEST(Sweep, InfeasibleBeyondMax) {
  DesignCharacterization design;
  design.ops_per_cycle = 2.0;
  WorkloadSweep sweep(design, VoltageScaling{VoltageParams{}});
  EXPECT_FALSE(sweep.at(sweep.max_mops() * 1.01).has_value());
  EXPECT_TRUE(sweep.at(sweep.max_mops() * 0.99).has_value());
}

TEST(Sweep, CurveEndsAtMaxWorkload) {
  DesignCharacterization design;
  design.ops_per_cycle = 2.0;
  design.energy.cores_pj = 10.0;
  WorkloadSweep sweep(design, VoltageScaling{VoltageParams{}});
  const auto curve = sweep.curve(1.0, 4);
  ASSERT_FALSE(curve.empty());
  EXPECT_NEAR(curve.back().mops, sweep.max_mops(), 0.01);
  EXPECT_NEAR(curve.back().voltage, 1.2, 1e-6);
}

TEST(Sweep, LowerVoltageAtLowerWorkload) {
  DesignCharacterization design;
  design.ops_per_cycle = 2.0;
  design.energy.cores_pj = 10.0;
  WorkloadSweep sweep(design, VoltageScaling{VoltageParams{}});
  const auto low = sweep.at(10.0);
  const auto high = sweep.at(120.0);
  ASSERT_TRUE(low && high);
  EXPECT_LT(low->voltage, high->voltage);
}

TEST(Integration, SynchronizedDesignSavesPowerAtIsoWorkload) {
  // End-to-end: run a real benchmark on both designs and compare power at a
  // workload both can sustain — the paper's headline comparison.
  kernels::BenchmarkParams params;
  params.samples = 64;
  kernels::Benchmark benchmark(kernels::BenchmarkKind::kMrpfltr, params);

  const auto baseline = kernels::run_benchmark(benchmark, false);
  const auto synced = kernels::run_benchmark(benchmark, true);
  ASSERT_TRUE(baseline.result.ok() && synced.result.ok());

  const VoltageScaling scaling{VoltageParams{}};
  const WorkloadSweep sweep_wo(
      characterize(EnergyParams::baseline(), baseline.counters,
                   baseline.sync_stats, baseline.useful_ops),
      scaling);
  const WorkloadSweep sweep_with(
      characterize(EnergyParams::synchronized(), synced.counters,
                   synced.sync_stats, synced.useful_ops),
      scaling);

  const double workload = sweep_wo.max_mops() * 0.75;
  const auto p_wo = sweep_wo.at(workload);
  const auto p_with = sweep_with.at(workload);
  ASSERT_TRUE(p_wo && p_with);
  const double saving =
      1.0 - p_with->breakdown.total_mw() / p_wo->breakdown.total_mw();
  EXPECT_GT(saving, 0.30) << "paper reports 55-64% at the highlighted points";
  EXPECT_LT(saving, 0.85);
  // The synchronized design extends the feasible workload range (~2x).
  EXPECT_GT(sweep_with.max_mops(), 1.5 * sweep_wo.max_mops());
}

}  // namespace
}  // namespace ulpsync::power
