// Unit tests for the power model: voltage/frequency scaling, per-event
// energy accounting, breakdown arithmetic, and the workload sweep engine.

#include <gtest/gtest.h>

#include "kernels/benchmark.h"
#include "power/model.h"
#include "power/scaling.h"
#include "power/sweep.h"

namespace ulpsync::power {
namespace {

TEST(VoltageScaling, NominalFrequencyFromCriticalPath) {
  VoltageScaling scaling{VoltageParams{}};
  EXPECT_NEAR(scaling.nominal_fmax_mhz(), 83.33, 0.01);
  EXPECT_NEAR(scaling.fmax_mhz(1.2), 83.33, 0.01);
}

TEST(VoltageScaling, FmaxMonotonicInVoltage) {
  VoltageScaling scaling{VoltageParams{}};
  double previous = 0.0;
  for (double v = 0.55; v <= 1.2; v += 0.05) {
    const double f = scaling.fmax_mhz(v);
    EXPECT_GT(f, previous);
    previous = f;
  }
}

TEST(VoltageScaling, BelowThresholdNoFrequency) {
  VoltageScaling scaling{VoltageParams{}};
  EXPECT_EQ(scaling.fmax_mhz(0.5), 0.0);
  EXPECT_EQ(scaling.fmax_mhz(0.3), 0.0);
}

TEST(VoltageScaling, MinVoltageInvertsFmax) {
  VoltageScaling scaling{VoltageParams{}};
  for (double f : {5.0, 20.0, 40.0, 60.0, 83.0}) {
    const auto v = scaling.min_voltage_for(f);
    ASSERT_TRUE(v.has_value()) << f;
    EXPECT_GE(scaling.fmax_mhz(*v), f * 0.999);
    // Just below, the frequency must no longer be achievable (tight bound).
    EXPECT_LT(scaling.fmax_mhz(*v - 0.01), f);
  }
}

TEST(VoltageScaling, OverNominalFrequencyInfeasible) {
  VoltageScaling scaling{VoltageParams{}};
  EXPECT_FALSE(scaling.min_voltage_for(90.0).has_value());
  EXPECT_TRUE(scaling.min_voltage_for(83.0).has_value());
}

TEST(VoltageScaling, DynamicScaleIsQuadratic) {
  VoltageScaling scaling{VoltageParams{}};
  EXPECT_DOUBLE_EQ(scaling.dynamic_scale(1.2), 1.0);
  EXPECT_DOUBLE_EQ(scaling.dynamic_scale(0.6), 0.25);
}

TEST(VoltageScaling, LeakageShrinksWithVoltage) {
  VoltageScaling scaling{VoltageParams{}};
  EXPECT_GT(scaling.leakage_mw(1.2), scaling.leakage_mw(0.8));
  EXPECT_GT(scaling.leakage_mw(0.8), 0.0);
}

TEST(RetentionModel, UpsetProbabilityMonotoneNonIncreasingInVoltage) {
  const RetentionModel retention{RetentionParams{}};
  double previous = 1.0;
  for (double v = 0.30; v <= 1.30; v += 0.05) {
    const double p = retention.upset_probability(v);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_LE(p, previous) << "at " << v;
    previous = p;
  }
}

TEST(RetentionModel, CertainUpsetAtOrBelowTheRetentionFloor) {
  const RetentionModel retention{RetentionParams{}};
  EXPECT_DOUBLE_EQ(retention.upset_probability(retention.params().retention_v),
                   1.0);
  EXPECT_DOUBLE_EQ(retention.upset_probability(0.1), 1.0);
  // Just above the floor the model drops below certainty again.
  EXPECT_LT(retention.upset_probability(1.2), 1e-8);
}

TEST(RetentionModel, NominalProbabilityAtNominalVoltage) {
  RetentionParams params;
  params.p_nominal = 1e-6;
  const RetentionModel retention{params};
  EXPECT_DOUBLE_EQ(retention.upset_probability(params.nominal_v), 1e-6);
  // expected_upsets is the plain Poisson rate p * bits * windows.
  EXPECT_DOUBLE_EQ(retention.expected_upsets(params.nominal_v, 1024.0, 100.0),
                   1e-6 * 1024.0 * 100.0);
}

sim::EventCounters fake_counters() {
  sim::EventCounters counters;
  counters.cycles = 1000;
  counters.retired_ops = 2000;
  counters.core_active_cycles = 4000;
  counters.im_bank_accesses = 500;
  counters.im_fetches_delivered = 2000;
  counters.dm_bank_accesses = 300;
  return counters;
}

TEST(EnergyModel, ChargesEveryComponent) {
  core::SynchronizerStats sync_stats;
  sync_stats.rmw_ops = 100;
  sync_stats.dm_accesses = 200;
  const auto energy = energy_per_cycle(EnergyParams::synchronized(),
                                       fake_counters(), sync_stats);
  EXPECT_GT(energy.cores_pj, 0.0);
  EXPECT_GT(energy.im_pj, 0.0);
  EXPECT_GT(energy.dm_pj, 0.0);
  EXPECT_GT(energy.dxbar_pj, 0.0);
  EXPECT_GT(energy.ixbar_pj, 0.0);
  EXPECT_GT(energy.synchronizer_pj, 0.0);
  EXPECT_GT(energy.clock_tree_pj, 0.0);
  EXPECT_NEAR(energy.total_pj(),
              energy.cores_pj + energy.im_pj + energy.dm_pj + energy.dxbar_pj +
                  energy.ixbar_pj + energy.synchronizer_pj + energy.clock_tree_pj,
              1e-9);
}

TEST(EnergyModel, BaselineHasNoSynchronizerCost) {
  const auto energy = energy_per_cycle(EnergyParams::baseline(),
                                       fake_counters(), {});
  EXPECT_EQ(energy.synchronizer_pj, 0.0);
}

TEST(EnergyModel, SyncDmAccessesChargedToDm) {
  core::SynchronizerStats with_sync_traffic;
  with_sync_traffic.dm_accesses = 300;  // as many again as the D-Xbar's
  const auto base = energy_per_cycle(EnergyParams::baseline(), fake_counters(), {});
  const auto more = energy_per_cycle(EnergyParams::baseline(), fake_counters(),
                                     with_sync_traffic);
  EXPECT_NEAR(more.dm_pj, 2.0 * base.dm_pj, 1e-9);
}

TEST(EnergyModel, BreakdownScalesWithFrequencyAndVoltage) {
  EnergyPerCycle energy;
  energy.cores_pj = 10.0;
  energy.clock_tree_pj = 5.0;
  const auto at_full = breakdown_at(energy, 80.0, 1.0, 0.1);
  EXPECT_NEAR(at_full.cores_mw, 0.8, 1e-9);
  EXPECT_NEAR(at_full.clock_tree_mw, 0.4, 1e-9);
  EXPECT_NEAR(at_full.leakage_mw, 0.1, 1e-9);
  EXPECT_NEAR(at_full.total_mw(), 1.3, 1e-9);
  const auto scaled = breakdown_at(energy, 40.0, 0.25, 0.0);
  EXPECT_NEAR(scaled.dynamic_mw(), at_full.dynamic_mw() / 8.0, 1e-9);
}

TEST(Sweep, MaxWorkloadIsIpcTimesNominalClock) {
  DesignCharacterization design;
  design.ops_per_cycle = 3.0;
  design.energy.cores_pj = 10.0;
  WorkloadSweep sweep(design, VoltageScaling{VoltageParams{}});
  EXPECT_NEAR(sweep.max_mops(), 3.0 * 83.33, 0.1);
}

TEST(Sweep, PowerMonotoneInWorkload) {
  DesignCharacterization design;
  design.ops_per_cycle = 3.0;
  design.energy.cores_pj = 10.0;
  design.energy.clock_tree_pj = 16.0;
  WorkloadSweep sweep(design, VoltageScaling{VoltageParams{}});
  double previous = 0.0;
  for (double w = 1.0; w < sweep.max_mops(); w *= 1.5) {
    const auto point = sweep.at(w);
    ASSERT_TRUE(point.has_value());
    EXPECT_GT(point->breakdown.total_mw(), previous);
    previous = point->breakdown.total_mw();
  }
}

TEST(Sweep, InfeasibleBeyondMax) {
  DesignCharacterization design;
  design.ops_per_cycle = 2.0;
  WorkloadSweep sweep(design, VoltageScaling{VoltageParams{}});
  EXPECT_FALSE(sweep.at(sweep.max_mops() * 1.01).has_value());
  EXPECT_TRUE(sweep.at(sweep.max_mops() * 0.99).has_value());
}

TEST(Sweep, CurveEndsAtMaxWorkload) {
  DesignCharacterization design;
  design.ops_per_cycle = 2.0;
  design.energy.cores_pj = 10.0;
  WorkloadSweep sweep(design, VoltageScaling{VoltageParams{}});
  const auto curve = sweep.curve(1.0, 4);
  ASSERT_FALSE(curve.empty());
  EXPECT_NEAR(curve.back().mops, sweep.max_mops(), 0.01);
  EXPECT_NEAR(curve.back().voltage, 1.2, 1e-6);
}

TEST(Sweep, LowerVoltageAtLowerWorkload) {
  DesignCharacterization design;
  design.ops_per_cycle = 2.0;
  design.energy.cores_pj = 10.0;
  WorkloadSweep sweep(design, VoltageScaling{VoltageParams{}});
  const auto low = sweep.at(10.0);
  const auto high = sweep.at(120.0);
  ASSERT_TRUE(low && high);
  EXPECT_LT(low->voltage, high->voltage);
}

// --- per-record energy report (scenario layer's power integration) ----------

TEST(EnergyReport, ResolvesDefaultOperatingPointExactly) {
  const auto energy = energy_per_cycle(EnergyParams::synchronized(),
                                       fake_counters(), {});
  const VoltageScaling scaling{VoltageParams{}};
  const EnergyReport report =
      energy_report(energy, 2.0, 1000, 0.0, 0.0, scaling);
  ASSERT_TRUE(report.feasible);
  EXPECT_DOUBLE_EQ(report.f_mhz, scaling.nominal_fmax_mhz());
  EXPECT_NEAR(report.voltage, 1.2, 1e-6);
  EXPECT_DOUBLE_EQ(report.mops, 2.0 * report.f_mhz);
  // Internal consistency of the derived quantities.
  const double total_mw = report.breakdown.total_mw();
  EXPECT_NEAR(report.energy_per_op_pj, total_mw / report.mops * 1000.0, 1e-9);
  EXPECT_NEAR(report.total_energy_uj, total_mw * 1000 / report.f_mhz / 1000.0,
              1e-9);
}

TEST(EnergyReport, TotalPowerMonotoneInFrequency) {
  // Auto voltage: raising the clock raises both the dynamic power (more
  // switching, higher supply) and the leakage (higher supply).
  const auto energy = energy_per_cycle(EnergyParams::synchronized(),
                                       fake_counters(), {});
  const VoltageScaling scaling{VoltageParams{}};
  double previous_mw = 0.0;
  double previous_v = 0.0;
  for (const double f : {5.0, 10.0, 20.0, 40.0, 60.0, 80.0}) {
    const EnergyReport report =
        energy_report(energy, 2.0, 1000, f, 0.0, scaling);
    ASSERT_TRUE(report.feasible) << f;
    EXPECT_GT(report.breakdown.total_mw(), previous_mw) << f;
    EXPECT_GT(report.voltage, previous_v) << f;
    previous_mw = report.breakdown.total_mw();
    previous_v = report.voltage;
  }
}

TEST(EnergyReport, TotalPowerMonotoneInVoltageAtFixedClock) {
  const auto energy = energy_per_cycle(EnergyParams::synchronized(),
                                       fake_counters(), {});
  const VoltageScaling scaling{VoltageParams{}};
  double previous_mw = 0.0;
  for (const double v : {0.8, 0.9, 1.0, 1.1, 1.2}) {
    const EnergyReport report =
        energy_report(energy, 2.0, 1000, 20.0, v, scaling);
    ASSERT_TRUE(report.feasible) << v;
    EXPECT_DOUBLE_EQ(report.voltage, v);
    EXPECT_GT(report.breakdown.total_mw(), previous_mw) << v;
    previous_mw = report.breakdown.total_mw();
  }
}

TEST(EnergyReport, InfeasiblePointsReportEmpty) {
  const auto energy = energy_per_cycle(EnergyParams::synchronized(),
                                       fake_counters(), {});
  const VoltageScaling scaling{VoltageParams{}};
  // Clock above the nominal maximum: no voltage sustains it.
  const EnergyReport too_fast =
      energy_report(energy, 2.0, 1000, 90.0, 0.0, scaling);
  EXPECT_FALSE(too_fast.feasible);
  EXPECT_EQ(too_fast.breakdown.total_mw(), 0.0);
  EXPECT_EQ(too_fast.energy_per_op_pj, 0.0);
  // Explicit supply too low for the requested clock.
  const EnergyReport too_low =
      energy_report(energy, 2.0, 1000, 50.0, 0.7, scaling);
  EXPECT_FALSE(too_low.feasible);
}

TEST(Integration, TableIBreakdownInvariantsHoldForEveryBenchmark) {
  // Table I reports the dynamic power distribution of both designs at
  // 8 MOps/s and 1.2 V. The absolute calibration is approximate (see
  // power/model.h), so this pins the *invariants* of the table — per
  // component, with generous ±50% envelopes around the paper's ranges.
  const VoltageScaling scaling{VoltageParams{}};
  for (const auto kind :
       {kernels::BenchmarkKind::kMrpfltr, kernels::BenchmarkKind::kSqrt32,
        kernels::BenchmarkKind::kMrpdln}) {
    kernels::BenchmarkParams params;
    params.samples = 64;
    const kernels::Benchmark benchmark(kind, params);
    const auto wo = kernels::run_benchmark(benchmark, false);
    const auto with = kernels::run_benchmark(benchmark, true);
    ASSERT_TRUE(wo.result.ok() && with.result.ok());

    auto breakdown_at_8mops = [&](const kernels::BenchmarkRun& run,
                                  const EnergyParams& calibration) {
      const DesignCharacterization design = characterize(
          calibration, run.counters, run.sync_stats, run.useful_ops);
      const double f_mhz = 8.0 / design.ops_per_cycle;
      return breakdown_at(design.energy, f_mhz, scaling.dynamic_scale(1.2),
                          0.0);
    };
    const PowerBreakdown b_wo = breakdown_at_8mops(wo, EnergyParams::baseline());
    const PowerBreakdown b_with =
        breakdown_at_8mops(with, EnergyParams::synchronized());

    // Row invariants (paper ranges: w/o 0.64..0.94 mW, with 0.47..0.58 mW).
    EXPECT_GT(b_wo.dynamic_mw(), 0.32);
    EXPECT_LT(b_wo.dynamic_mw(), 1.41);
    EXPECT_GT(b_with.dynamic_mw(), 0.23);
    EXPECT_LT(b_with.dynamic_mw(), 0.87);
    // The synchronized design wins the iso-workload comparison outright.
    EXPECT_LT(b_with.dynamic_mw(), b_wo.dynamic_mw());
    // IM and clock tree shrink (lockstep fetch sharing); the synchronizer
    // row exists only with the hardware and stays a small fraction.
    EXPECT_LT(b_with.im_mw, b_wo.im_mw);
    EXPECT_LT(b_with.clock_tree_mw, b_wo.clock_tree_mw);
    EXPECT_EQ(b_wo.synchronizer_mw, 0.0);
    EXPECT_GT(b_with.synchronizer_mw, 0.0);
    EXPECT_LT(b_with.synchronizer_mw, 0.1 * b_with.dynamic_mw());
  }
}

TEST(Integration, SynchronizedDesignSavesPowerAtIsoWorkload) {
  // End-to-end: run a real benchmark on both designs and compare power at a
  // workload both can sustain — the paper's headline comparison.
  kernels::BenchmarkParams params;
  params.samples = 64;
  kernels::Benchmark benchmark(kernels::BenchmarkKind::kMrpfltr, params);

  const auto baseline = kernels::run_benchmark(benchmark, false);
  const auto synced = kernels::run_benchmark(benchmark, true);
  ASSERT_TRUE(baseline.result.ok() && synced.result.ok());

  const VoltageScaling scaling{VoltageParams{}};
  const WorkloadSweep sweep_wo(
      characterize(EnergyParams::baseline(), baseline.counters,
                   baseline.sync_stats, baseline.useful_ops),
      scaling);
  const WorkloadSweep sweep_with(
      characterize(EnergyParams::synchronized(), synced.counters,
                   synced.sync_stats, synced.useful_ops),
      scaling);

  const double workload = sweep_wo.max_mops() * 0.75;
  const auto p_wo = sweep_wo.at(workload);
  const auto p_with = sweep_with.at(workload);
  ASSERT_TRUE(p_wo && p_with);
  const double saving =
      1.0 - p_with->breakdown.total_mw() / p_wo->breakdown.total_mw();
  EXPECT_GT(saving, 0.30) << "paper reports 55-64% at the highlighted points";
  EXPECT_LT(saving, 0.85);
  // The synchronized design extends the feasible workload range (~2x).
  EXPECT_GT(sweep_with.max_mops(), 1.5 * sweep_wo.max_mops());
}

}  // namespace
}  // namespace ulpsync::power
