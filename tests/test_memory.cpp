// Unit tests for the banked data memory.

#include <gtest/gtest.h>

#include "sim/memory.h"

namespace ulpsync::sim {
namespace {

TEST(BankedMemory, SizeAndBankMapping) {
  BankedMemory memory(16, 2048);
  EXPECT_EQ(memory.size(), 32768u);
  EXPECT_EQ(memory.banks(), 16u);
  EXPECT_EQ(memory.bank_of(0), 0u);
  EXPECT_EQ(memory.bank_of(2047), 0u);
  EXPECT_EQ(memory.bank_of(2048), 1u);
  EXPECT_EQ(memory.bank_of(32767), 15u);
}

TEST(BankedMemory, ReadWriteRoundTrip) {
  BankedMemory memory(4, 8);
  memory.write(0, 0xDEAD);
  memory.write(31, 0xBEEF);
  EXPECT_EQ(memory.read(0), 0xDEAD);
  EXPECT_EQ(memory.read(31), 0xBEEF);
  EXPECT_EQ(memory.read(15), 0);
}

TEST(BankedMemory, InRange) {
  BankedMemory memory(2, 4);
  EXPECT_TRUE(memory.in_range(7));
  EXPECT_FALSE(memory.in_range(8));
}

TEST(BankedMemory, ClearZeroes) {
  BankedMemory memory(2, 4);
  memory.write(3, 77);
  memory.clear();
  EXPECT_EQ(memory.read(3), 0);
}

}  // namespace
}  // namespace ulpsync::sim
