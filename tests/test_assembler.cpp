// Unit tests for the two-pass TR16 assembler: syntax, labels, expressions,
// directives, pseudo-instructions, diagnostics, and the listing generator.

#include <gtest/gtest.h>

#include "asm/assembler.h"

namespace ulpsync::assembler {
namespace {

using isa::Opcode;

Program assemble_ok(std::string_view source) {
  auto result = assemble(source);
  EXPECT_TRUE(result.ok()) << result.error_text();
  return std::move(result.program);
}

std::string first_error(std::string_view source) {
  const auto result = assemble(source);
  EXPECT_FALSE(result.ok());
  return result.errors.empty() ? "" : result.errors.front().message;
}

TEST(Assembler, EmptySourceYieldsEmptyProgram) {
  const auto program = assemble_ok("\n ; just a comment\n // another\n");
  EXPECT_EQ(program.size(), 0u);
}

TEST(Assembler, EncodesEveryOperandForm) {
  const auto program = assemble_ok(R"(
      add  r1, r2, r3
      addi r1, r2, -5
      ld   r4, [r2+10]
      ld   r4, [r2]
      st   [r2+3], r5
      st   [r2], r5
      ldx  r6, [r2+r3]
      stx  r6, [r2+r3]
      cmp  r1, r2
      cmpi r1, 100
      movi r7, 0x1FF
      jr   r7
      csrr r1, #2
      csrw #2, r1
      sinc #4
      sdec #4
      sleep
      halt
  )");
  EXPECT_EQ(program.size(), 18u);
  EXPECT_EQ(program.code[0].op, Opcode::kAdd);
  EXPECT_EQ(program.code[1].imm, -5);
  EXPECT_EQ(program.code[2].imm, 10);
  EXPECT_EQ(program.code[3].imm, 0);
  EXPECT_EQ(program.code[4].rd, 5);
  EXPECT_EQ(program.code[6].op, Opcode::kLdx);
  EXPECT_EQ(program.code[10].imm, 0x1FF);
  EXPECT_EQ(program.code[14].op, Opcode::kSinc);
  EXPECT_EQ(program.code[14].imm, 4);
}

TEST(Assembler, LabelsResolveForwardAndBackward) {
  const auto program = assemble_ok(R"(
  top:
      addi r1, r1, 1
      beq  done
      bra  top
  done:
      halt
  )");
  // beq at address 1 -> done at 3: offset = 3 - 2 = 1.
  EXPECT_EQ(program.code[1].imm, 1);
  // bra at address 2 -> top at 0: offset = 0 - 3 = -3.
  EXPECT_EQ(program.code[2].imm, -3);
  EXPECT_EQ(program.labels.at("top"), 0u);
  EXPECT_EQ(program.labels.at("done"), 3u);
}

TEST(Assembler, LabelOnSameLineAsInstruction) {
  const auto program = assemble_ok("entry: halt\n");
  EXPECT_EQ(program.labels.at("entry"), 0u);
  EXPECT_EQ(program.size(), 1u);
}

TEST(Assembler, MultipleLabelsOnOneAddress) {
  const auto program = assemble_ok("a: b: halt\n");
  EXPECT_EQ(program.labels.at("a"), 0u);
  EXPECT_EQ(program.labels.at("b"), 0u);
}

TEST(Assembler, JalEncodesAbsoluteTarget) {
  const auto program = assemble_ok(R"(
      jal r7, func
      halt
  func:
      jr r7
  )");
  EXPECT_EQ(program.code[0].imm, 2);
}

TEST(Assembler, EquConstantsAndExpressions) {
  const auto program = assemble_ok(R"(
  .equ BASE, 0x100
  .equ OFFSET, 8
      ld r1, [r2+BASE+OFFSET]
      ld r1, [r2+BASE-OFFSET]
      movi r3, BASE+1
  )");
  EXPECT_EQ(program.code[0].imm, 0x108);
  EXPECT_EQ(program.code[1].imm, 0xF8);
  EXPECT_EQ(program.code[2].imm, 0x101);
}

TEST(Assembler, LabelsUsableInMoviExpressions) {
  const auto program = assemble_ok(R"(
      movi r1, target
      jr   r1
      halt
  target:
      halt
  )");
  EXPECT_EQ(program.code[0].imm, 3);
}

TEST(Assembler, OrgSetsOrigin) {
  const auto program = assemble_ok(R"(
  .org 0x20
  here:
      bra here
  )");
  EXPECT_EQ(program.origin, 0x20u);
  EXPECT_EQ(program.labels.at("here"), 0x20u);
  EXPECT_EQ(program.code[0].imm, -1);
}

TEST(Assembler, PseudoInstructions) {
  const auto program = assemble_ok(R"(
      nop
      mov r5, r6
  )");
  EXPECT_EQ(program.code[0], (isa::Instruction{Opcode::kAdd, 0, 0, 0, 0}));
  EXPECT_EQ(program.code[1], (isa::Instruction{Opcode::kAdd, 5, 6, 0, 0}));
}

TEST(Assembler, NumericLiteralBases) {
  const auto program = assemble_ok(R"(
      movi r1, 0x10
      movi r2, 0b101
      movi r3, 42
  )");
  EXPECT_EQ(program.code[0].imm, 16);
  EXPECT_EQ(program.code[1].imm, 5);
  EXPECT_EQ(program.code[2].imm, 42);
}

TEST(Assembler, MoviAcceptsNegativeAsRawPattern) {
  const auto program = assemble_ok("movi r1, -1\nmovi r2, -32768\n");
  EXPECT_EQ(program.code[0].imm, 0xFFFF);
  EXPECT_EQ(program.code[1].imm, 0x8000);
}

TEST(Assembler, CaseInsensitiveMnemonicsAndRegisters) {
  const auto program = assemble_ok("ADD R1, r2, R3\nHALT\n");
  EXPECT_EQ(program.code[0].op, Opcode::kAdd);
}

TEST(AssemblerErrors, UnknownMnemonic) {
  EXPECT_NE(first_error("frobnicate r1, r2\n").find("unknown mnemonic"),
            std::string::npos);
}

TEST(AssemblerErrors, DuplicateLabel) {
  EXPECT_NE(first_error("x: nop\nx: nop\n").find("duplicate label"),
            std::string::npos);
}

TEST(AssemblerErrors, UndefinedSymbol) {
  EXPECT_NE(first_error("beq nowhere\n").find("undefined symbol"),
            std::string::npos);
}

TEST(AssemblerErrors, BranchOutOfRange) {
  std::string source = "start: nop\n";
  for (int i = 0; i < 9000; ++i) source += "nop\n";
  source += "bra start\n";
  EXPECT_NE(first_error(source).find("out of range"), std::string::npos);
}

TEST(AssemblerErrors, ImmediateOutOfRange) {
  EXPECT_NE(first_error("addi r1, r2, 9000\n").find("out of range"),
            std::string::npos);
  EXPECT_NE(first_error("movi r1, 70000\n").find("16-bit range"),
            std::string::npos);
}

TEST(AssemblerErrors, MissingOperands) {
  EXPECT_FALSE(assemble("add r1, r2\n").ok());
  EXPECT_FALSE(assemble("ld r1, r2\n").ok());
  EXPECT_FALSE(assemble("st [r2+1]\n").ok());
}

TEST(AssemblerErrors, TrailingTokens) {
  EXPECT_NE(first_error("halt r1\n").find("trailing"), std::string::npos);
}

TEST(AssemblerErrors, BadRegisterName) {
  EXPECT_FALSE(assemble("add r1, r2, r16\n").ok());
  EXPECT_FALSE(assemble("add r1, r2, x3\n").ok());
}

TEST(AssemblerErrors, OrgAfterInstructionRejected) {
  EXPECT_NE(first_error("nop\n.org 16\n").find(".org"), std::string::npos);
}

TEST(AssemblerErrors, ReportsLineNumbers) {
  const auto result = assemble("nop\nnop\nbogus\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.errors.front().line, 3);
}

TEST(AssemblerErrors, CollectsMultipleErrors) {
  const auto result = assemble("bogus1\nbogus2\n");
  EXPECT_EQ(result.errors.size(), 2u);
}

TEST(Assembler, ListingShowsAddressEncodingAndText) {
  const auto program = assemble_ok(".org 2\nadd r3, r1, r2\n");
  const std::string text = listing(program);
  EXPECT_NE(text.find("0002"), std::string::npos);
  EXPECT_NE(text.find("add r3, r1, r2"), std::string::npos);
}

TEST(Assembler, ReencodeMatchesOriginalImage) {
  const auto program = assemble_ok(R"(
      movi r1, 100
  loop:
      addi r1, r1, -1
      cmpi r1, 0
      bne  loop
      halt
  )");
  EXPECT_EQ(reencode(program.code), program.image);
}

TEST(Assembler, ImageDecodesBackToCode) {
  const auto program = assemble_ok("ld r4, [r2+10]\nst [r2+3], r5\nhalt\n");
  for (std::size_t i = 0; i < program.size(); ++i) {
    EXPECT_EQ(*isa::decode(program.image[i]), program.code[i]);
  }
}

}  // namespace
}  // namespace ulpsync::assembler
