// Fig. 3a: total power vs workload for the MRPFLTR benchmark.
// Paper: 64% saving at 89 MOps/s; endpoints 89 MOps/s @ 10.46 mW (w/o) and
// 211 MOps/s @ 15.38 mW (with).

#include "fig3_report.h"

int main(int argc, char** argv) {
  return ulpsync::bench::run_fig3(
      "mrpfltr",
      {/*highlight_mops=*/89.0, /*paper_saving_pct=*/64.0,
       /*paper_wo_max=*/89.0, 10.46, /*paper_with_max=*/211.0, 15.38},
      argc, argv);
}
