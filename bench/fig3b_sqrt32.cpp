// Fig. 3b: total power vs workload for the SQRT32 benchmark.
// Paper: 56% saving at 156 MOps/s; endpoints 156 MOps/s @ 12.61 mW (w/o)
// and 290 MOps/s @ 18.27 mW (with).

#include "fig3_report.h"

int main(int argc, char** argv) {
  return ulpsync::bench::run_fig3(
      "sqrt32",
      {/*highlight_mops=*/156.0, /*paper_saving_pct=*/56.0,
       /*paper_wo_max=*/156.0, 12.61, /*paper_with_max=*/290.0, 18.27},
      argc, argv);
}
