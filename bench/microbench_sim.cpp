// E9: google-benchmark microbenchmarks of the simulator substrate itself —
// platform tick rate under lockstep / diverged / synchronizing workloads,
// assembler throughput, the instrumentation pass, and the scenario sweep
// engine's serial-vs-parallel wall clock.

#include <benchmark/benchmark.h>

#include "asm/assembler.h"
#include "core/instrument.h"
#include "kernels/benchmark.h"
#include "kernels/sources.h"
#include "scenario/engine.h"
#include "sim/platform.h"

namespace {

using namespace ulpsync;

const assembler::Program& lockstep_program() {
  static const auto program = [] {
    std::string source = "start:\n";
    for (int i = 0; i < 32; ++i) source += "  addi r1, r1, 1\n";
    source += "  bra start\n";
    return assembler::assemble(source).program;
  }();
  return program;
}

const assembler::Program& diverged_program() {
  static const auto program = assembler::assemble(R"(
      csrr r1, #0
      movi r2, 0
  loop:
      add  r2, r2, r1
      andi r3, r2, 7
      cmpi r3, 4
      blt  low
      addi r2, r2, 3
  low:
      bra  loop
  )").program;
  return program;
}

void BM_PlatformTickLockstep(benchmark::State& state) {
  sim::Platform platform(sim::PlatformConfig::with_synchronizer());
  platform.load_program(lockstep_program());
  for (auto _ : state) platform.tick();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          platform.config().num_cores);
}
BENCHMARK(BM_PlatformTickLockstep);

void BM_PlatformTickDiverged(benchmark::State& state) {
  sim::Platform platform(sim::PlatformConfig::without_synchronizer());
  platform.load_program(diverged_program());
  for (auto _ : state) platform.tick();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          platform.config().num_cores);
}
BENCHMARK(BM_PlatformTickDiverged);

void BM_FullBenchmarkRun(benchmark::State& state) {
  kernels::BenchmarkParams params;
  params.samples = 32;
  kernels::Benchmark benchmark(kernels::BenchmarkKind::kSqrt32, params);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const auto run = kernels::run_benchmark(benchmark, state.range(0) != 0);
    cycles += run.counters.cycles;
    benchmark::DoNotOptimize(run.counters.cycles);
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullBenchmarkRun)->Arg(0)->Arg(1);

void BM_Assembler(benchmark::State& state) {
  const std::string source = kernels::mrpfltr_source(true);
  for (auto _ : state) {
    auto result = assembler::assemble(source);
    benchmark::DoNotOptimize(result.program.image.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(source.size()));
}
BENCHMARK(BM_Assembler);

void BM_AutoInstrument(benchmark::State& state) {
  const auto program =
      assembler::assemble(kernels::mrpdln_source(false)).program;
  for (auto _ : state) {
    auto result = core::auto_instrument(program, core::InstrumentOptions{});
    benchmark::DoNotOptimize(result.program.code.data());
  }
}
BENCHMARK(BM_AutoInstrument);

// The sweep engine on a small but real matrix (2 workloads x 2 designs);
// Arg is the job count, so 1-vs-N shows the parallel speed-up directly.
void BM_EngineSweep(benchmark::State& state) {
  scenario::WorkloadParams params;
  params.samples = 32;
  scenario::Matrix matrix;
  matrix.workloads({"sqrt32", "clip8"}).base_params(params);
  scenario::EngineOptions options;
  options.jobs = static_cast<unsigned>(state.range(0));
  const scenario::Engine engine(scenario::Registry::builtins(), options);
  std::uint64_t sim_cycles = 0;
  for (auto _ : state) {
    const auto records = engine.run(matrix);
    for (const auto& record : records) sim_cycles += record.cycles();
    benchmark::DoNotOptimize(records.data());
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(sim_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineSweep)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
