// Reproduces Table I: dynamic power distribution of both designs while
// running the reference benchmarks at 8 MOps/s and 1.2 V.
//
// The paper reports, per component, the range across the three benchmarks;
// this harness prints the per-benchmark values, the measured min..max
// range, and the paper's range side by side.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "scenario/report.h"

namespace {

using namespace ulpsync;

struct PaperRange {
  const char* component;
  double wo_lo, wo_hi;      // w/o synchronizer
  double with_lo, with_hi;  // with synchronizer
};

// Table I of the paper (mW at 8 MOps/s, 1.2 V).
constexpr PaperRange kPaper[] = {
    {"Total (dynamic)", 0.64, 0.94, 0.47, 0.58},
    {"Cores", 0.14, 0.14, 0.16, 0.16},
    {"IM", 0.20, 0.36, 0.09, 0.15},
    {"DM", 0.05, 0.08, 0.06, 0.08},
    {"D-Xbar", 0.06, 0.06, 0.05, 0.05},
    {"I-Xbar", 0.03, 0.03, 0.02, 0.02},
    {"Synchronizer", 0.0, 0.0, 0.01, 0.01},
    {"Clock Tree", 0.09, 0.16, 0.05, 0.08},
};

double component_value(const power::PowerBreakdown& b, unsigned row) {
  switch (row) {
    case 0: return b.dynamic_mw();
    case 1: return b.cores_mw;
    case 2: return b.im_mw;
    case 3: return b.dm_mw;
    case 4: return b.dxbar_mw;
    case 5: return b.ixbar_mw;
    case 6: return b.synchronizer_mw;
    case 7: return b.clock_tree_mw;
  }
  return 0.0;
}

std::string range(double lo, double hi) {
  if (lo == hi) return util::Table::num(lo, 2);
  return util::Table::num(lo, 2) + " .. " + util::Table::num(hi, 2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ulpsync::scenario;
  const util::CliArgs args(argc, argv);
  WorkloadParams params;
  params.samples = static_cast<unsigned>(args.get_int("samples", 256));
  const double workload_mops = args.get_double("mops", 8.0);

  const Engine engine(Registry::builtins(), engine_options_from(args));
  const auto records = engine.run(
      Matrix().workloads({"mrpfltr", "sqrt32", "mrpdln"}).base_params(params));
  require_ok(records);

  std::printf("Table I reproduction: dynamic power distribution at %.1f MOps/s, 1.2 V\n\n",
              workload_mops);

  for (int with_sync = 0; with_sync <= 1; ++with_sync) {
    std::printf("--- %s ---\n", with_sync ? "with synchronizer" : "w/o synchronizer");
    util::Table table({"Component", "MRPFLTR (mW)", "SQRT32 (mW)", "MRPDLN (mW)",
                       "measured range", "paper range"});
    for (unsigned row = 0; row < 8; ++row) {
      std::vector<std::string> cells = {kPaper[row].component};
      double lo = 1e99, hi = -1e99;
      for (const char* workload : {"mrpfltr", "sqrt32", "mrpdln"}) {
        const RunRecord* record = find(records, workload, with_sync != 0);
        const double value =
            component_value(breakdown_at_mops(*record, workload_mops), row);
        cells.push_back(util::Table::num(value, 3));
        lo = std::min(lo, value);
        hi = std::max(hi, value);
      }
      cells.push_back(range(lo, hi));
      cells.push_back(with_sync ? range(kPaper[row].with_lo, kPaper[row].with_hi)
                                : range(kPaper[row].wo_lo, kPaper[row].wo_hi));
      table.add_row(cells);
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  maybe_write_records(args, records);
  return 0;
}
