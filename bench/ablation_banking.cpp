// Ablation E11: sensitivity to the IM bank-mapping granularity — the one
// substrate parameter the paper does not specify and that our model had to
// choose (DESIGN.md §3). Sweeps the interleave line length (plus pure
// block mapping) for both designs across all benchmarks.
//
// Expected shape: the baseline's throughput depends strongly on the
// mapping (diverged cores spread across banks in proportion to line
// granularity), while the synchronized design is almost insensitive —
// lockstep cores always hit one bank with a single broadcast access.
// This is why the technique also *simplifies* the memory system design.

#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ulpsync;
  const util::CliArgs args(argc, argv);
  kernels::BenchmarkParams params;
  params.samples = static_cast<unsigned>(args.get_int("samples", 128));

  std::printf("Ablation: IM bank-mapping granularity (N=%u)\n\n", params.samples);
  util::Table table({"benchmark", "IM mapping", "ops/cycle w/o",
                     "ops/cycle with", "speedup"});

  for (auto kind : kernels::kAllBenchmarks) {
    kernels::Benchmark benchmark(kind, params);
    for (unsigned line : {4u, 8u, 16u, 32u, 64u, 0u /* block */}) {
      double ipc[2] = {0, 0};
      std::uint64_t cycles[2] = {0, 0};
      for (const bool with_sync : {false, true}) {
        auto config = benchmark.platform_config(with_sync);
        config.im_line_slots = line;
        sim::Platform platform(config);
        platform.load_program(benchmark.program(with_sync));
        benchmark.load_inputs(platform);
        const auto result = platform.run(500'000'000);
        if (!result.ok() || !benchmark.verify(platform).empty()) {
          std::fprintf(stderr, "failed: line=%u\n", line);
          return 1;
        }
        const auto useful = kernels::Benchmark::useful_ops(
            platform.counters(), platform.sync_stats());
        ipc[with_sync] = static_cast<double>(useful) /
                         static_cast<double>(platform.counters().cycles);
        cycles[with_sync] = platform.counters().cycles;
      }
      table.add_row({std::string(kernels::benchmark_name(kind)),
                     line == 0 ? "block" : std::to_string(line) + "-instr lines",
                     util::Table::num(ipc[0]), util::Table::num(ipc[1]),
                     util::Table::num(static_cast<double>(cycles[0]) /
                                      static_cast<double>(cycles[1])) + "x"});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  bench::maybe_write_csv(args, table);
  return 0;
}
