// Ablation E11: sensitivity to the IM bank-mapping granularity — the one
// substrate parameter the paper does not specify and that our model had to
// choose. Sweeps the interleave line length (plus pure block mapping) for
// both designs across all benchmarks: one Matrix with an im_line_slots
// axis, 36 specs, embarrassingly parallel under --jobs.
//
// Expected shape: the baseline's throughput depends strongly on the
// mapping (diverged cores spread across banks in proportion to line
// granularity), while the synchronized design is almost insensitive —
// lockstep cores always hit one bank with a single broadcast access.
// This is why the technique also *simplifies* the memory system design.

#include <cstdio>
#include <string>

#include "scenario/report.h"

int main(int argc, char** argv) {
  using namespace ulpsync;
  using namespace ulpsync::scenario;
  const util::CliArgs args(argc, argv);
  WorkloadParams params;
  params.samples = static_cast<unsigned>(args.get_int("samples", 128));

  const Engine engine(Registry::builtins(), engine_options_from(args));
  const auto records =
      engine.run(Matrix()
                     .workloads({"mrpfltr", "sqrt32", "mrpdln"})
                     .im_line_slots({4, 8, 16, 32, 64, 0 /* block */})
                     .base_params(params));
  require_ok(records);

  std::printf("Ablation: IM bank-mapping granularity (N=%u)\n\n", params.samples);
  util::Table table({"benchmark", "IM mapping", "ops/cycle w/o",
                     "ops/cycle with", "speedup"});

  for (const char* workload : {"mrpfltr", "sqrt32", "mrpdln"}) {
    for (unsigned line : {4u, 8u, 16u, 32u, 64u, 0u}) {
      const RunRecord* wo = nullptr;
      const RunRecord* with = nullptr;
      for (const auto& record : records) {
        if (record.spec.workload != workload ||
            record.spec.im_line_slots != line) {
          continue;
        }
        (record.spec.with_synchronizer() ? with : wo) = &record;
      }
      table.add_row({std::string(workload),
                     line == 0 ? "block" : std::to_string(line) + "-instr lines",
                     util::Table::num(wo->ops_per_cycle),
                     util::Table::num(with->ops_per_cycle),
                     util::Table::num(static_cast<double>(wo->cycles()) /
                                      static_cast<double>(with->cycles())) + "x"});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  maybe_write_csv(args, table);
  maybe_write_records(args, records);
  return 0;
}
