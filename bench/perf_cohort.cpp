// Cohort-sweep throughput harness: scalar engine vs the batched
// many-platform engine.
//
// A patient cohort runs the same program on the same design many times,
// varying only the generated input data — exactly the shape the
// `BatchEngine` accelerates by emulating follower lanes against one real
// leader platform. This harness expands 1/8/64/512-patient cohorts of the
// duty-cycled workloads (`sleepgen` and the `streaming.uniform` monitor),
// runs every cohort through both engines on one thread, and reports the
// *aggregate instance throughput* — total simulated cycles across all
// patients per wall second — plus the batch/scalar speedup per row.
// Records are asserted byte-identical between the two engines on every
// row: a speedup that changed results would be a bug, not a win.
//
// Emits BENCH_cohort_throughput.json (override with --out=...). Compare a
// fresh run against the committed baseline with tools/bench_compare.py
// (the gate keys on `batch64_min_speedup`: the smallest batch/scalar
// speedup across the 64-and-wider cohorts). Flags:
//   --samples N     samples per channel (default 256)
//   --cores N       platform width (default 8)
//   --min-wall MS   minimum wall time per engine measurement (default 200)
//   --out PATH      output JSON path (default BENCH_cohort_throughput.json)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/batch.h"
#include "scenario/report.h"

namespace {

using namespace ulpsync;
using namespace ulpsync::scenario;

constexpr const char* kWorkloads[] = {"sleepgen", "streaming.uniform"};
constexpr unsigned kCohortSizes[] = {1, 8, 64, 512};

struct Measurement {
  std::uint64_t instance_cycles = 0;  ///< summed over the cohort, one rep
  unsigned reps = 0;
  double wall_seconds = 0.0;

  [[nodiscard]] double mcycles_per_second() const {
    return wall_seconds <= 0.0 ? 0.0
                               : static_cast<double>(instance_cycles) * reps /
                                     wall_seconds / 1e6;
  }
};

/// Repeats `sweep` until `min_wall` elapses; returns the records of the
/// first rep (for the identity check) through `records`.
template <typename Sweep>
Measurement measure(const Sweep& sweep, std::chrono::milliseconds min_wall,
                    std::vector<RunRecord>& records) {
  Measurement m;
  records = sweep();  // warm-up rep: page in code and inputs
  for (const RunRecord& record : records) {
    if (!record.ok()) {
      throw std::runtime_error("cohort case failed: " + record.spec.workload +
                               ": " + record.verify_error);
    }
    m.instance_cycles += record.cycles();
  }
  const auto start = std::chrono::steady_clock::now();
  do {
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<RunRecord> rep = sweep();
    m.wall_seconds += std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    m.reps += 1;
  } while (std::chrono::steady_clock::now() - start < min_wall);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  WorkloadParams base_params;
  base_params.samples = static_cast<unsigned>(args.get_int("samples", 256));
  const unsigned cores = static_cast<unsigned>(args.get_int("cores", 8));
  const std::chrono::milliseconds min_wall(args.get_int("min-wall", 200));
  const std::string out_path = args.get("out", "BENCH_cohort_throughput.json");

  const Registry& registry = Registry::builtins();
  const Engine scalar(registry, EngineOptions{.jobs = 1});
  const BatchEngine batch(registry, BatchOptions{.jobs = 1});

  std::printf(
      "cohort sweep throughput (N=%u samples/channel, %u cores, >=%lld ms "
      "per point)\n\n",
      base_params.samples, cores, static_cast<long long>(min_wall.count()));
  util::Table table({"Workload", "patients", "scalar Mcyc/s", "batch Mcyc/s",
                     "speedup", "batched", "fallbacks"});

  std::string runs_json;
  double batch64_min_speedup = 0.0;
  bool have_headline = false;
  for (const char* workload : kWorkloads) {
    for (const unsigned patients : kCohortSizes) {
      Matrix matrix;
      matrix.workloads({workload});
      // The synchronizer checkpoint word caps that design at 8 cores; the
      // crossbar-only design is the paper's wide-platform scaling regime.
      matrix.design(cores <= 8 ? DesignVariant::synchronized()
                               : DesignVariant::xbar_only());
      matrix.num_cores({cores});
      matrix.samples({base_params.samples});
      matrix.cohort(patients);
      const std::vector<RunSpec> specs = matrix.expand();

      std::vector<RunRecord> scalar_records;
      const Measurement scalar_m = measure(
          [&] { return scalar.run(specs); }, min_wall, scalar_records);

      std::vector<RunRecord> batch_records;
      BatchStats stats;
      const Measurement batch_m = measure(
          [&] {
            BatchResult result = batch.run(specs);
            stats = std::move(result.stats);
            return std::move(result.records);
          },
          min_wall, batch_records);

      if (to_csv(batch_records) != to_csv(scalar_records)) {
        throw std::runtime_error(std::string("cohort records diverged between "
                                             "engines: ") +
                                 workload);
      }

      const double speedup =
          scalar_m.mcycles_per_second() > 0.0
              ? batch_m.mcycles_per_second() / scalar_m.mcycles_per_second()
              : 0.0;
      if (patients >= 64 && (!have_headline || speedup < batch64_min_speedup)) {
        batch64_min_speedup = speedup;
        have_headline = true;
      }

      table.add_row({workload, std::to_string(patients),
                     util::Table::num(scalar_m.mcycles_per_second()),
                     util::Table::num(batch_m.mcycles_per_second()),
                     util::Table::num(speedup),
                     std::to_string(stats.batched_runs),
                     std::to_string(stats.scalar_runs)});

      if (!runs_json.empty()) runs_json += ",\n";
      char buffer[512];
      std::snprintf(
          buffer, sizeof(buffer),
          "    {\"workload\": \"%s\", \"patients\": %u, \"cores\": %u, "
          "\"instance_cycles\": %llu, "
          "\"scalar_mcycles_per_second\": %.3f, "
          "\"batch_mcycles_per_second\": %.3f, \"speedup\": %.3f, "
          "\"batched_runs\": %zu, \"scalar_fallback_runs\": %zu}",
          workload, patients, cores,
          static_cast<unsigned long long>(batch_m.instance_cycles),
          scalar_m.mcycles_per_second(), batch_m.mcycles_per_second(), speedup,
          stats.batched_runs, stats.scalar_runs);
      runs_json += buffer;
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  maybe_write_csv(args, table);
  std::printf("minimum batch/scalar speedup at 64+ patients: %.3fx\n",
              batch64_min_speedup);

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"cohort_throughput\",\n"
      << "  \"samples_per_channel\": " << base_params.samples << ",\n"
      << "  \"cores\": " << cores << ",\n"
      << "  \"min_wall_ms\": " << min_wall.count() << ",\n"
      << "  \"batch64_min_speedup\": " << batch64_min_speedup << ",\n"
      << "  \"runs\": [\n"
      << runs_json << "\n  ]\n}\n";
  std::printf("JSON written to %s\n", out_path.c_str());
  return 0;
}
