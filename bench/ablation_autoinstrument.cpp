// Ablation E10: automatic vs manual synchronization-point insertion.
// The paper inserted its pragmas manually and noted the process "can in
// principle be automated during the compilation process" — this harness
// runs our CFG-based pass (core/instrument.h) on the plain kernels and
// compares region count, cycles, and Ops/cycle against the hand-placed
// variant.

#include <cstdio>

#include "bench_common.h"
#include "core/instrument.h"

int main(int argc, char** argv) {
  using namespace ulpsync;
  const util::CliArgs args(argc, argv);
  kernels::BenchmarkParams params;
  params.samples = static_cast<unsigned>(args.get_int("samples", 128));

  std::printf("Ablation: automatic vs manual sync-point insertion (N=%u)\n\n",
              params.samples);
  util::Table table({"benchmark", "variant", "regions", "cycles", "ops/cycle",
                     "vs baseline"});

  for (auto kind : kernels::kAllBenchmarks) {
    kernels::Benchmark benchmark(kind, params);
    const auto baseline = bench::run_design(benchmark, false);
    const double baseline_cycles =
        static_cast<double>(baseline.run.counters.cycles);

    // Manual (the kernels' hand-inserted pragmas).
    const auto manual = bench::run_design(benchmark, true);
    auto count_regions = [](const assembler::Program& program) {
      unsigned count = 0;
      for (const auto& instr : program.code)
        count += (instr.op == isa::Opcode::kSinc);
      return count;
    };
    table.add_row({std::string(benchmark.name()), "manual",
                   std::to_string(count_regions(benchmark.program(true))),
                   std::to_string(manual.run.counters.cycles),
                   util::Table::num(manual.character.ops_per_cycle),
                   util::Table::num(baseline_cycles /
                                    static_cast<double>(manual.run.counters.cycles)) + "x"});

    // Automatic: instrument the plain kernel with the compiler pass.
    const auto instrumented =
        core::auto_instrument(benchmark.program(false), core::InstrumentOptions{});
    if (!instrumented.ok()) {
      std::fprintf(stderr, "auto-instrumentation failed: %s\n",
                   instrumented.error.c_str());
      return 1;
    }
    sim::Platform platform(benchmark.platform_config(true));
    platform.load_program(instrumented.program);
    benchmark.load_inputs(platform);
    const auto result = platform.run(500'000'000);
    if (!result.ok()) {
      std::fprintf(stderr, "auto-instrumented run failed: %s\n",
                   result.to_string().c_str());
      return 1;
    }
    const auto verify_error = benchmark.verify(platform);
    if (!verify_error.empty()) {
      std::fprintf(stderr, "auto-instrumented outputs wrong: %s\n",
                   verify_error.c_str());
      return 1;
    }
    const auto& counters = platform.counters();
    const auto useful =
        kernels::Benchmark::useful_ops(counters, platform.sync_stats());
    table.add_row({"", "automatic", std::to_string(instrumented.regions.size()),
                   std::to_string(counters.cycles),
                   util::Table::num(static_cast<double>(useful) /
                                    static_cast<double>(counters.cycles)),
                   util::Table::num(baseline_cycles /
                                    static_cast<double>(counters.cycles)) + "x"});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
