// Ablation E10: automatic vs manual synchronization-point insertion.
// The paper inserted its pragmas manually and noted the process "can in
// principle be automated during the compilation process" — the registry's
// `.auto` workload variants run our CFG-based pass (core/instrument.h) on
// the plain kernels; this harness compares region count, cycles, and
// Ops/cycle against the hand-placed variant.

#include <cstdio>
#include <string>

#include "scenario/report.h"

int main(int argc, char** argv) {
  using namespace ulpsync;
  using namespace ulpsync::scenario;
  const util::CliArgs args(argc, argv);
  WorkloadParams params;
  params.samples = static_cast<unsigned>(args.get_int("samples", 128));

  // Baseline + manual from the hand-instrumented workloads; the `.auto`
  // variants only make sense on the synchronized design.
  auto specs = Matrix()
                   .workloads({"mrpfltr", "sqrt32", "mrpdln"})
                   .base_params(params)
                   .expand();
  const auto auto_specs =
      Matrix()
          .workloads({"mrpfltr.auto", "sqrt32.auto", "mrpdln.auto"})
          .design(DesignVariant::synchronized())
          .base_params(params)
          .expand();
  specs.insert(specs.end(), auto_specs.begin(), auto_specs.end());

  const Engine engine(Registry::builtins(), engine_options_from(args));
  const auto records = engine.run(specs);
  require_ok(records);

  std::printf("Ablation: automatic vs manual sync-point insertion (N=%u)\n\n",
              params.samples);
  util::Table table({"benchmark", "variant", "regions", "cycles", "ops/cycle",
                     "vs baseline"});

  for (const char* workload : {"mrpfltr", "sqrt32", "mrpdln"}) {
    const auto pair = find_pair(records, workload);
    const RunRecord* automatic =
        find(records, std::string(workload) + ".auto", true);
    const double baseline_cycles = static_cast<double>(pair.baseline->cycles());
    auto add_row = [&](const char* name, const char* variant,
                       const RunRecord& record) {
      table.add_row({name, variant, std::string(record.extra_value("sync_points")),
                     std::to_string(record.cycles()),
                     util::Table::num(record.ops_per_cycle),
                     util::Table::num(baseline_cycles /
                                      static_cast<double>(record.cycles())) + "x"});
    };
    add_row(workload, "manual", *pair.synced);
    add_row("", "automatic", *automatic);
  }
  std::printf("%s\n", table.to_string().c_str());
  maybe_write_csv(args, table);
  maybe_write_records(args, records);
  return 0;
}
