// Ablation E8: core-count scaling (context of ref. [3], which compared
// single- and multi-core ULP platforms). Runs SQRT32 on 1/2/4/8 cores for
// both designs — one Matrix with a core-count axis — and reports throughput
// per cycle and energy per op; the synchronization technique should matter
// more the more cores there are.

#include <cstdio>
#include <string>

#include "scenario/report.h"

int main(int argc, char** argv) {
  using namespace ulpsync;
  using namespace ulpsync::scenario;
  const util::CliArgs args(argc, argv);
  WorkloadParams params;
  params.samples = static_cast<unsigned>(args.get_int("samples", 128));

  const Engine engine(Registry::builtins(), engine_options_from(args));
  const auto records = engine.run(
      Matrix().workload("sqrt32").num_cores({1, 2, 4, 8}).base_params(params));
  require_ok(records);

  std::printf("Ablation: core-count scaling, SQRT32, N=%u per channel\n\n",
              params.samples);
  util::Table table({"cores", "ops/cycle w/o", "ops/cycle with", "speedup",
                     "pJ/op w/o", "pJ/op with", "saving"});

  auto pj_per_op = [](const RunRecord& record) {
    const double total_pj = record.energy.total_pj() *
                            static_cast<double>(record.cycles());
    return total_pj / static_cast<double>(record.useful_ops);
  };

  for (unsigned cores : {1u, 2u, 4u, 8u}) {
    const RunRecord* wo = nullptr;
    const RunRecord* with = nullptr;
    for (const auto& record : records) {
      if (record.spec.params.num_channels != cores) continue;
      (record.spec.with_synchronizer() ? with : wo) = &record;
    }
    const double e_wo = pj_per_op(*wo);
    const double e_with = pj_per_op(*with);
    table.add_row({std::to_string(cores),
                   util::Table::num(wo->ops_per_cycle),
                   util::Table::num(with->ops_per_cycle),
                   util::Table::num(static_cast<double>(wo->cycles()) /
                                    static_cast<double>(with->cycles())) + "x",
                   util::Table::num(e_wo, 1), util::Table::num(e_with, 1),
                   util::Table::num(100.0 * (1.0 - e_with / e_wo), 1) + "%"});
  }
  std::printf("%s\n", table.to_string().c_str());
  maybe_write_csv(args, table);
  maybe_write_records(args, records);
  std::printf("Expectation: on 1 core both designs coincide (nothing to\n"
              "synchronize); savings grow with the core count.\n");
  return 0;
}
