// Ablation E8: core-count scaling (context of ref. [3], which compared
// single- and multi-core ULP platforms). Runs SQRT32 on 1/2/4/8 cores for
// both designs and reports throughput per cycle and energy per op — the
// synchronization technique should matter more the more cores there are.

#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ulpsync;
  const util::CliArgs args(argc, argv);
  const unsigned samples = static_cast<unsigned>(args.get_int("samples", 128));

  std::printf("Ablation: core-count scaling, SQRT32, N=%u per channel\n\n", samples);
  util::Table table({"cores", "ops/cycle w/o", "ops/cycle with", "speedup",
                     "pJ/op w/o", "pJ/op with", "saving"});

  for (unsigned cores : {1u, 2u, 4u, 8u}) {
    kernels::BenchmarkParams params;
    params.samples = samples;
    params.num_channels = cores;
    kernels::Benchmark benchmark(kernels::BenchmarkKind::kSqrt32, params);

    const auto wo = bench::run_design(benchmark, false);
    const auto with = bench::run_design(benchmark, true);

    auto pj_per_op = [](const bench::DesignRun& design) {
      const double total_pj = design.character.energy.total_pj() *
                              static_cast<double>(design.run.counters.cycles);
      return total_pj / static_cast<double>(design.run.useful_ops);
    };
    const double e_wo = pj_per_op(wo);
    const double e_with = pj_per_op(with);
    table.add_row({std::to_string(cores),
                   util::Table::num(wo.character.ops_per_cycle),
                   util::Table::num(with.character.ops_per_cycle),
                   util::Table::num(static_cast<double>(wo.run.counters.cycles) /
                                    static_cast<double>(with.run.counters.cycles)) + "x",
                   util::Table::num(e_wo, 1), util::Table::num(e_with, 1),
                   util::Table::num(100.0 * (1.0 - e_with / e_wo), 1) + "%"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Expectation: on 1 core both designs coincide (nothing to\n"
              "synchronize); savings grow with the core count.\n");
  return 0;
}
