// Ablation E7: which of the paper's two mechanisms buys what?
//   * check-in/check-out resynchronization (hardware synchronizer + ISE)
//   * enhanced D-Xbar policy (PC-compare conflict stalls)
//   * partial-group fetch broadcast (the I-Xbar PC comparators)
// Runs every benchmark under the four feature combinations and reports
// Ops/cycle, IM accesses per op, and lockstep residency.

#include <cstdio>

#include "bench_common.h"
#include "core/lockstep.h"

int main(int argc, char** argv) {
  using namespace ulpsync;
  const util::CliArgs args(argc, argv);
  kernels::BenchmarkParams params;
  params.samples = static_cast<unsigned>(args.get_int("samples", 128));

  struct Variant {
    const char* name;
    bool synchronizer;
    bool dxbar_policy;
    bool partial_broadcast;
  };
  const Variant variants[] = {
      {"baseline ([4])", false, false, false},
      {"+ partial broadcast", false, false, true},
      {"+ check-in/out only", true, false, true},
      {"+ D-Xbar policy (full)", true, true, true},
  };

  std::printf("Ablation: contribution of each mechanism (N=%u)\n\n", params.samples);
  for (auto kind : kernels::kAllBenchmarks) {
    kernels::Benchmark benchmark(kind, params);
    std::printf("--- %s ---\n", std::string(benchmark.name()).c_str());
    util::Table table({"variant", "ops/cycle", "cycles", "IM acc/op",
                       "lockstep", "speedup vs baseline"});
    double baseline_cycles = 0.0;
    for (const auto& variant : variants) {
      auto config = benchmark.platform_config(variant.synchronizer);
      config.features.hardware_synchronizer = variant.synchronizer;
      config.features.dxbar_pc_policy = variant.dxbar_policy;
      config.features.ixbar_partial_broadcast = variant.partial_broadcast;

      sim::Platform platform(config);
      // Only designs with the synchronizer can run instrumented code.
      platform.load_program(benchmark.program(variant.synchronizer));
      benchmark.load_inputs(platform);
      core::LockstepAnalyzer analyzer;
      analyzer.attach(platform);
      const auto result = platform.run(500'000'000);
      if (!result.ok()) {
        std::fprintf(stderr, "%s: %s\n", variant.name, result.to_string().c_str());
        return 1;
      }
      const auto verify_error = benchmark.verify(platform);
      if (!verify_error.empty()) {
        std::fprintf(stderr, "%s: %s\n", variant.name, verify_error.c_str());
        return 1;
      }
      const auto& counters = platform.counters();
      const auto useful = kernels::Benchmark::useful_ops(counters,
                                                         platform.sync_stats());
      if (baseline_cycles == 0.0)
        baseline_cycles = static_cast<double>(counters.cycles);
      table.add_row(
          {variant.name,
           util::Table::num(static_cast<double>(useful) /
                            static_cast<double>(counters.cycles)),
           std::to_string(counters.cycles),
           util::Table::num(static_cast<double>(counters.im_bank_accesses) /
                            static_cast<double>(useful), 3),
           util::Table::num(100.0 * analyzer.metrics().lockstep_fraction(), 1) + "%",
           util::Table::num(baseline_cycles /
                            static_cast<double>(counters.cycles)) + "x"});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  return 0;
}
