// Ablation E7: which of the paper's two mechanisms buys what?
//   * check-in/check-out resynchronization (hardware synchronizer + ISE)
//   * enhanced D-Xbar policy (PC-compare conflict stalls)
//   * partial-group fetch broadcast (the I-Xbar PC comparators)
// Runs every benchmark under the four feature combinations — one Matrix
// with a custom design axis — and reports Ops/cycle, IM accesses per op,
// and lockstep residency.

#include <cstdio>
#include <string>

#include "scenario/report.h"

int main(int argc, char** argv) {
  using namespace ulpsync;
  using namespace ulpsync::scenario;
  const util::CliArgs args(argc, argv);
  WorkloadParams params;
  params.samples = static_cast<unsigned>(args.get_int("samples", 128));

  const std::vector<DesignVariant> variants = {
      {"baseline ([4])", {false, false, false}},
      {"+ partial broadcast", {false, false, true}},
      {"+ check-in/out only", {true, false, true}},
      {"+ D-Xbar policy (full)", {true, true, true}},
  };

  const Engine engine(Registry::builtins(), engine_options_from(args));
  const auto records = engine.run(Matrix()
                                      .workloads({"mrpfltr", "sqrt32", "mrpdln"})
                                      .designs(variants)
                                      .base_params(params));
  require_ok(records);

  std::printf("Ablation: contribution of each mechanism (N=%u)\n\n", params.samples);
  for (const char* workload : {"mrpfltr", "sqrt32", "mrpdln"}) {
    std::printf("--- %s ---\n", workload);
    util::Table table({"variant", "ops/cycle", "cycles", "IM acc/op",
                       "lockstep", "speedup vs baseline"});
    const RunRecord* baseline = find_design(records, workload, variants[0].label);
    for (const auto& variant : variants) {
      const RunRecord* record = find_design(records, workload, variant.label);
      table.add_row(
          {variant.label, util::Table::num(record->ops_per_cycle),
           std::to_string(record->cycles()),
           util::Table::num(static_cast<double>(record->counters.im_bank_accesses) /
                            static_cast<double>(record->useful_ops), 3),
           util::Table::num(100.0 * record->lockstep_fraction, 1) + "%",
           util::Table::num(static_cast<double>(baseline->cycles()) /
                            static_cast<double>(record->cycles())) + "x"});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  maybe_write_records(args, records);
  return 0;
}
