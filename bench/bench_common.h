#pragma once

/// Shared helpers for the benchmark harnesses: run all three reference
/// benchmarks on both designs and characterize them for the power model.

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "kernels/benchmark.h"
#include "power/model.h"
#include "power/scaling.h"
#include "power/sweep.h"
#include "util/cli.h"
#include "util/table.h"

namespace ulpsync::bench {

struct DesignRun {
  kernels::BenchmarkRun run;
  power::DesignCharacterization character;
};

struct BenchmarkPair {
  kernels::BenchmarkKind kind;
  DesignRun baseline;      ///< "w/o synchronizer"
  DesignRun synchronized_; ///< "with synchronizer"
};

inline DesignRun run_design(const kernels::Benchmark& benchmark,
                            bool with_synchronizer) {
  DesignRun out;
  out.run = kernels::run_benchmark(benchmark, with_synchronizer);
  if (!out.run.verify_error.empty()) {
    throw std::runtime_error(std::string(benchmark.name()) +
                             " verification failed: " + out.run.verify_error);
  }
  const power::EnergyParams energy = with_synchronizer
                                         ? power::EnergyParams::synchronized()
                                         : power::EnergyParams::baseline();
  out.character = power::characterize(energy, out.run.counters,
                                      out.run.sync_stats, out.run.useful_ops);
  return out;
}

inline BenchmarkPair run_pair(kernels::BenchmarkKind kind,
                              const kernels::BenchmarkParams& params) {
  kernels::Benchmark benchmark(kind, params);
  BenchmarkPair pair{kind, run_design(benchmark, false),
                     run_design(benchmark, true)};
  return pair;
}

/// Writes the table to `--csv <path>` when requested (for re-plotting).
inline void maybe_write_csv(const util::CliArgs& args,
                            const util::Table& table) {
  if (!args.has("csv")) return;
  const std::string path = args.get("csv", "out.csv");
  std::ofstream file(path);
  file << table.to_csv();
  std::printf("CSV written to %s\n", path.c_str());
}

}  // namespace ulpsync::bench
