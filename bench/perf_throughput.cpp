// Simulator throughput harness: the repo's performance baseline.
//
// Sweeps core count x workload (the builtin paper/example kernels, the
// duty-cycled streaming monitor, and the 8/16/32/64-core "sleepgen"
// scaling sweep), times every run, and reports the host throughput in
// simulated cycles per wall second. Compare a fresh run against the
// committed BENCH_sim_throughput.json with tools/bench_compare.py. Each configuration is
// additionally measured in three simulation modes, so the two hot-path
// mechanisms can be tracked independently:
//  * "full"      — engine defaults (lockstep metrics on, all fast paths on;
//                  the analyzer is a platform sink, not an observer, so it
//                  no longer suppresses them),
//  * "ff"        — no metrics, idle fast-forward + bursts ON (the fastest
//                  mode),
//  * "naive"     — no metrics, every fast path OFF (the reference
//                  cycle-by-cycle loop).
// Simulation *results* are identical across all three modes — only wall
// time differs — which tests/test_fastforward.cpp asserts exhaustively.
//
// Emits BENCH_sim_throughput.json (override with --out=...). Flags:
//   --samples N     samples per channel (default 256)
//   --min-wall MS   minimum wall time per measured configuration (default 300)
//   --out PATH      output JSON path (default BENCH_sim_throughput.json)
//   --jobs N        accepted for CLI uniformity; measurements always run
//                   serially so per-run wall times are undistorted
// (Sweep-level wall budgets are an Engine feature — EngineOptions::budget;
// they are meaningless for this harness's one-spec timing sweeps.)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/report.h"

namespace {

using namespace ulpsync;
using namespace ulpsync::scenario;

struct Case {
  const char* workload;
  unsigned cores;
  bool sleep_heavy;  ///< barrier/duty-cycle kernels (the paper's target mix)
  /// Core-count scaling rows (the sleepgen sweep). Excluded from the
  /// headline sleep-heavy mean so the committed baseline stays comparable
  /// across revisions; they run with the synchronizer-less xbar design
  /// (the synchronizer caps at 8 cores).
  bool scaling = false;
};

constexpr Case kCases[] = {
    {"mrpfltr", 8, true},  {"sqrt32", 8, true},  {"mrpdln", 8, true},
    {"streaming", 8, true}, {"clip8", 8, false},
    {"sqrt32", 4, true},   {"sqrt32", 2, true},
    // Core-count scaling sweep: the wide-platform duty-cycled workload.
    {"sleepgen", 8, true, true},
    {"sleepgen", 16, true, true},
    {"sleepgen", 32, true, true},
    {"sleepgen", 64, true, true},
};

struct Mode {
  const char* name;
  bool measure_lockstep;
  bool fast_forward;
  bool burst;
};

constexpr Mode kModes[] = {
    {"full", true, true, true},
    {"ff", false, true, true},
    {"naive", false, false, false},
};

struct Measurement {
  std::uint64_t sim_cycles_per_run = 0;
  unsigned reps = 0;
  double wall_seconds = 0.0;

  [[nodiscard]] double mcycles_per_second() const {
    return wall_seconds <= 0.0 ? 0.0
                               : static_cast<double>(sim_cycles_per_run) *
                                     reps / wall_seconds / 1e6;
  }
};

/// Repeats one spec until `min_wall` elapses, through Engine::run_timed so
/// the measurement exercises exactly the code path every driver uses.
Measurement measure(const Engine& engine, const RunSpec& spec,
                    std::chrono::milliseconds min_wall) {
  Measurement m;
  {
    const auto warmup = engine.run_timed({spec});
    if (!warmup.records.front().ok()) {
      throw std::runtime_error("perf case failed: " +
                               warmup.records.front().spec.workload + ": " +
                               warmup.records.front().verify_error);
    }
    m.sim_cycles_per_run = warmup.perf.sim_cycles;
  }
  const auto start = std::chrono::steady_clock::now();
  do {
    const auto sweep = engine.run_timed({spec});
    m.wall_seconds += sweep.perf.run_wall_seconds.front();
    m.reps += 1;
  } while (std::chrono::steady_clock::now() - start < min_wall);
  return m;
}

std::string json_escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  WorkloadParams base_params;
  base_params.samples = static_cast<unsigned>(args.get_int("samples", 256));
  const std::chrono::milliseconds min_wall(args.get_int("min-wall", 300));
  const std::string out_path = args.get("out", "BENCH_sim_throughput.json");

  EngineOptions base_options = engine_options_from(args);
  base_options.jobs = 1;  // serial: per-run wall times must not contend

  std::printf("simulator throughput (N=%u samples/channel, >=%lld ms per point)\n\n",
              base_params.samples, static_cast<long long>(min_wall.count()));
  util::Table table({"Workload", "cores", "mode", "sim cycles/run",
                     "Mcycles/s", "reps"});

  std::string runs_json;
  double sleep_heavy_full_sum = 0.0;
  unsigned sleep_heavy_full_count = 0;
  for (const Case& c : kCases) {
    RunSpec spec;
    spec.workload = c.workload;
    spec.params = base_params;
    spec.params.num_channels = c.cores;
    spec.design = c.scaling ? DesignVariant::xbar_only()
                            : DesignVariant::synchronized();

    for (const Mode& mode : kModes) {
      EngineOptions options = base_options;
      options.measure_lockstep = mode.measure_lockstep;
      spec.fast_forward = mode.fast_forward;
      spec.burst = mode.burst;
      const Engine engine(Registry::builtins(), options);
      const Measurement m = measure(engine, spec, min_wall);

      table.add_row({c.workload, std::to_string(c.cores), mode.name,
                     std::to_string(m.sim_cycles_per_run),
                     util::Table::num(m.mcycles_per_second()),
                     std::to_string(m.reps)});
      if (!runs_json.empty()) runs_json += ",\n";
      char buffer[512];
      std::snprintf(buffer, sizeof(buffer),
                    "    {\"workload\": \"%s\", \"cores\": %u, \"mode\": \"%s\", "
                    "\"sleep_heavy\": %s, \"scaling\": %s, "
                    "\"sim_cycles_per_run\": %llu, "
                    "\"reps\": %u, \"wall_seconds\": %.6f, "
                    "\"mcycles_per_second\": %.3f}",
                    json_escape(c.workload).c_str(), c.cores, mode.name,
                    c.sleep_heavy ? "true" : "false",
                    c.scaling ? "true" : "false",
                    static_cast<unsigned long long>(m.sim_cycles_per_run),
                    m.reps, m.wall_seconds, m.mcycles_per_second());
      runs_json += buffer;
      if (c.sleep_heavy && !c.scaling && c.cores == 8 &&
          std::string(mode.name) == "full") {
        sleep_heavy_full_sum += m.mcycles_per_second();
        sleep_heavy_full_count += 1;
      }
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  maybe_write_csv(args, table);

  const double sleep_heavy_mean =
      sleep_heavy_full_count == 0 ? 0.0
                                  : sleep_heavy_full_sum / sleep_heavy_full_count;
  std::printf("mean throughput, 8-core sleep-heavy workloads (full mode): "
              "%.3f Mcycles/s\n", sleep_heavy_mean);

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"sim_throughput\",\n"
      << "  \"samples_per_channel\": " << base_params.samples << ",\n"
      << "  \"min_wall_ms\": " << min_wall.count() << ",\n"
      << "  \"sleep_heavy_8core_full_mean_mcycles_per_second\": "
      << sleep_heavy_mean << ",\n"
      << "  \"runs\": [\n" << runs_json << "\n  ]\n}\n";
  std::printf("JSON written to %s\n", out_path.c_str());
  return 0;
}
