#pragma once

/// Thin formatter for the Fig. 3 reproductions: total power vs workload
/// (MOps/s) under voltage scaling, for one workload, both designs. The
/// simulation itself is one two-spec Matrix through the sweep engine; this
/// header only renders the log-log series, the curve endpoints and the
/// power saving at the workload the paper highlights.

#include <cstdio>

#include "power/scaling.h"
#include "power/sweep.h"
#include "scenario/report.h"
#include "util/cli.h"
#include "util/table.h"

namespace ulpsync::bench {

struct Fig3Reference {
  double highlight_mops;   ///< workload the paper annotates
  double paper_saving_pct; ///< paper's saving at that workload
  double paper_wo_max_mops, paper_wo_max_mw;
  double paper_with_max_mops, paper_with_max_mw;
};

inline int run_fig3(std::string_view workload, const Fig3Reference& ref,
                    int argc, char** argv) {
  using namespace ulpsync::scenario;
  const util::CliArgs args(argc, argv);
  WorkloadParams params;
  params.samples = static_cast<unsigned>(args.get_int("samples", 192));

  const Engine engine(Registry::builtins(), engine_options_from(args));
  const auto records =
      engine.run(Matrix().workload(std::string(workload)).base_params(params));
  require_ok(records);
  const auto pair = find_pair(records, workload);

  const power::VoltageScaling scaling{power::VoltageParams{}};
  const power::WorkloadSweep sweep_wo(characterization(*pair.baseline), scaling);
  const power::WorkloadSweep sweep_with(characterization(*pair.synced), scaling);

  std::printf("Fig. 3 reproduction (%s): total power vs workload, voltage scaling\n\n",
              std::string(workload).c_str());

  util::Table table({"MOps/s", "P w/o (mW)", "V w/o", "P with (mW)", "V with",
                     "saving"});
  for (const auto& point : sweep_wo.curve(1.0, 4)) {
    std::vector<std::string> row = {util::Table::num(point.mops, 1),
                                    util::Table::num(point.breakdown.total_mw(), 3),
                                    util::Table::num(point.voltage, 2)};
    if (const auto with = sweep_with.at(point.mops)) {
      const double saving =
          1.0 - with->breakdown.total_mw() / point.breakdown.total_mw();
      row.push_back(util::Table::num(with->breakdown.total_mw(), 3));
      row.push_back(util::Table::num(with->voltage, 2));
      row.push_back(util::Table::num(100.0 * saving, 1) + "%");
    } else {
      row.insert(row.end(), {"-", "-", "-"});
    }
    table.add_row(row);
  }
  // Beyond the baseline's endpoint, only the synchronized design runs.
  for (const auto& point : sweep_with.curve(sweep_wo.max_mops() * 1.1, 4)) {
    table.add_row({util::Table::num(point.mops, 1), "infeasible", "-",
                   util::Table::num(point.breakdown.total_mw(), 3),
                   util::Table::num(point.voltage, 2), "-"});
  }
  std::printf("%s\n", table.to_string().c_str());
  maybe_write_csv(args, table);

  const auto wo_max = sweep_wo.at(sweep_wo.max_mops());
  const auto with_max = sweep_with.at(sweep_with.max_mops());
  std::printf("Curve endpoints (max workload @ nominal voltage):\n");
  std::printf("  w/o : measured %.0f MOps/s @ %.2f mW   (paper %.0f MOps/s @ %.2f mW)\n",
              wo_max->mops, wo_max->breakdown.total_mw(), ref.paper_wo_max_mops,
              ref.paper_wo_max_mw);
  std::printf("  with: measured %.0f MOps/s @ %.2f mW   (paper %.0f MOps/s @ %.2f mW)\n\n",
              with_max->mops, with_max->breakdown.total_mw(),
              ref.paper_with_max_mops, ref.paper_with_max_mw);

  const auto wo_at = sweep_wo.at(ref.highlight_mops);
  const auto with_at = sweep_with.at(ref.highlight_mops);
  if (wo_at && with_at) {
    const double saving =
        100.0 * (1.0 - with_at->breakdown.total_mw() / wo_at->breakdown.total_mw());
    std::printf("Power saving at the paper's highlighted %.0f MOps/s:\n",
                ref.highlight_mops);
    std::printf("  measured %.0f%%   (paper: up to %.0f%%)\n", saving,
                ref.paper_saving_pct);
  } else {
    std::printf("Highlighted workload %.0f MOps/s infeasible for the baseline;\n"
                "nearest feasible comparison at %.0f MOps/s\n",
                ref.highlight_mops, sweep_wo.max_mops());
    const auto wo_near = sweep_wo.at(sweep_wo.max_mops());
    const auto with_near = sweep_with.at(sweep_wo.max_mops());
    if (wo_near && with_near) {
      std::printf("  measured %.0f%%   (paper: up to %.0f%%)\n",
                  100.0 * (1.0 - with_near->breakdown.total_mw() /
                                     wo_near->breakdown.total_mw()),
                  ref.paper_saving_pct);
    }
  }
  return 0;
}

}  // namespace ulpsync::bench
