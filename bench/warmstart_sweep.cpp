// Warm-start sweep harness: measures the wall-clock savings of sharing one
// simulated warm-up prefix across a fan-out of runs (RunSpec::checkpoint_at,
// sim/snapshot.h).
//
// The sweep shape is the init-heavy one every timing study produces: the
// same kernel observed at K progressively longer cycle horizons. A cold
// sweep re-simulates the common prefix K times; a warm sweep simulates it
// once, snapshots it, and resumes every horizon from the snapshot. Records
// are byte-identical either way (asserted here via the CSV round-trip), so
// the whole difference is host wall time, reported from SweepPerf.
//
// A third, sharded mode (--shards N) additionally spools the same sweep to
// disk (scenario/shard.h) — shipping the shared WarmState in the bundles —
// and drains it with worker threads standing in for worker processes,
// asserting the merged CSV is byte-identical to the in-process sweeps.
//
// Flags:
//   --workload NAME  builtin workload (default mrpfltr)
//   --samples N      samples per channel (default 256)
//   --horizons K     fan-out width (default 8)
//   --cohort N       fan the sweep out over N per-patient generator draws
//                    (ecg/cohort.h); each patient keeps its own shared
//                    warm-up prefix across the horizon fan-out (default 0)
//   --cohort-seed S  master cohort seed (default 2024)
//   --out PATH       output JSON path (default BENCH_warm_start.json)
//   --shards N       also run the sweep through an on-disk work spool
//                    split into N shards (default 0 = skip)
//   --workers W      concurrent spool workers in sharded mode (default 2)
//   --spool DIR      spool directory (default warmstart_spool; recreated)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ecg/cohort.h"
#include "scenario/cli.h"
#include "scenario/report.h"
#include "scenario/shard.h"

int main(int argc, char** argv) {
  using namespace ulpsync;
  using namespace ulpsync::scenario;

  const util::CliArgs args(argc, argv);
  const std::string workload = args.get("workload", "mrpfltr");
  const unsigned horizons = static_cast<unsigned>(args.get_int("horizons", 8));
  const std::string out_path = args.get("out", "BENCH_warm_start.json");
  WorkloadParams params;
  params.samples = static_cast<unsigned>(args.get_int("samples", 256));

  EngineOptions options = engine_options_from(args);
  options.jobs = 1;  // serial: the measured saving must come from sharing,
                     // not from thread scheduling

  // Calibrate: one full run tells us the kernel's total cycle count, from
  // which the shared prefix (3/4 of the run) and the horizon fan-out are
  // derived.
  RunSpec probe;
  probe.workload = workload;
  probe.params = params;
  probe.design = DesignVariant::synchronized();
  const Engine probe_engine(Registry::builtins(), options);
  const RunRecord probe_record = probe_engine.run_one(probe);
  if (!probe_record.ok()) {
    std::fprintf(stderr, "probe run failed: %s\n",
                 probe_record.verify_error.c_str());
    return 1;
  }
  const std::uint64_t total = probe_record.cycles();
  const std::uint64_t prefix = total * 3 / 4;
  if (prefix == 0 || horizons == 0) {
    std::fprintf(stderr, "degenerate sweep (total=%llu)\n",
                 static_cast<unsigned long long>(total));
    return 1;
  }

  // Optional cohort axis: each patient is its own identical-prefix group
  // (patients differ in generator draws, so their warm-up prefixes differ),
  // sharing one warm state across its horizon fan-out. The prefix length
  // is calibrated once on the base parameters; per-patient run lengths stay
  // close enough for the 3/4 split to hold.
  const cli::CohortAxis cohort_axis = cli::cohort_from_flags(args);
  const unsigned patients = cohort_axis.patients;
  const ecg::CohortParams& cohort_params = cohort_axis.params;

  std::vector<RunSpec> specs;
  for (unsigned p = 0; p < std::max(1u, patients); ++p) {
    RunSpec patient = probe;
    if (patients != 0) {
      patient.params.generator =
          ecg::patient_params(cohort_params, probe.params.generator, p);
      patient.cohort = CohortTag{cohort_params.seed, p, patients};
    }
    for (unsigned i = 0; i < horizons; ++i) {
      RunSpec spec = patient;
      spec.checkpoint_at = prefix;
      // Horizons span (prefix, total]; the last one runs to completion.
      spec.max_cycles = prefix + (total - prefix) * (i + 1) / horizons + 1;
      specs.push_back(spec);
    }
  }

  auto sweep = [&](bool warm) {
    EngineOptions sweep_options = options;
    sweep_options.warm_start = warm;
    const Engine engine(Registry::builtins(), sweep_options);
    return engine.run_timed(specs);
  };
  const SweepResult cold = sweep(false);
  const SweepResult warm = sweep(true);

  if (to_csv(cold.records) != to_csv(warm.records)) {
    std::fprintf(stderr,
                 "warm-started records differ from cold records — "
                 "snapshot resume is broken\n");
    return 1;
  }

  // Sharded mode: the same sweep through the on-disk spool, with the warm
  // state shipped in the bundles and worker threads draining the queue.
  const unsigned shards = static_cast<unsigned>(args.get_int("shards", 0));
  const unsigned workers =
      std::max(1u, static_cast<unsigned>(args.get_int("workers", 2)));
  double sharded_wall = 0.0;
  std::size_t sharded_warm_resumed = 0;
  if (shards > 0) {
    const std::string spool = args.get("spool", "warmstart_spool");
    std::filesystem::remove_all(spool);
    const auto start = std::chrono::steady_clock::now();
    const PlanResult plan =
        plan_spool(spool, specs, Registry::builtins(), {.shards = shards});
    std::vector<WorkReport> reports(workers);
    std::vector<std::string> worker_errors(workers);
    std::vector<std::thread> pool;
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        // A spool I/O failure must surface as a clean bench error, not an
        // exception escaping the thread (std::terminate).
        try {
          reports[w] = work_spool(spool, Registry::builtins(),
                                  {.worker_id = "bench-" + std::to_string(w)});
        } catch (const std::exception& error) {
          worker_errors[w] = error.what();
        }
      });
    }
    for (auto& worker : pool) worker.join();
    for (unsigned w = 0; w < workers; ++w) {
      if (!worker_errors[w].empty()) {
        std::fprintf(stderr, "spool worker %u failed: %s\n", w,
                     worker_errors[w].c_str());
        return 1;
      }
    }
    const std::string merged = merge_spool(spool);
    sharded_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    for (const WorkReport& report : reports) {
      sharded_warm_resumed += report.warm_resumed;
    }
    if (merged != to_csv(cold.records)) {
      std::fprintf(stderr,
                   "sharded merge differs from the in-process sweep — "
                   "the spool path is broken\n");
      return 1;
    }
    std::printf("sharded sweep: %.3f s wall (plan+%u worker(s)+merge), "
                "%u shard(s), %zu warm state(s) shipped, %zu run(s) "
                "warm-resumed — merged CSV byte-identical\n",
                sharded_wall, workers, plan.shards, plan.warm_states,
                sharded_warm_resumed);
  }

  const double speedup = warm.perf.wall_seconds > 0.0
                             ? cold.perf.wall_seconds / warm.perf.wall_seconds
                             : 0.0;
  std::printf("workload %s, %u samples/ch: %llu total cycles, shared prefix "
              "%llu, %u horizons\n",
              workload.c_str(), params.samples,
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(prefix), horizons);
  std::printf("cold sweep: %.3f s wall, %llu sim cycles\n",
              cold.perf.wall_seconds,
              static_cast<unsigned long long>(cold.perf.sim_cycles));
  std::printf("warm sweep: %.3f s wall, %llu sim cycles (%zu warm-up(s), "
              "%.3f s; %zu resumed; est. %.3f s saved) — records "
              "byte-identical\n",
              warm.perf.wall_seconds,
              static_cast<unsigned long long>(warm.perf.sim_cycles),
              warm.perf.warmups, warm.perf.warmup_wall_seconds,
              warm.perf.warm_resumed, warm.perf.warmup_saved_seconds);
  std::printf("speedup: %.2fx\n", speedup);

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"warm_start\",\n"
      << "  \"workload\": \"" << workload << "\",\n"
      << "  \"samples_per_channel\": " << params.samples << ",\n"
      << "  \"horizons\": " << horizons << ",\n";
  if (patients > 0) {
    out << "  \"cohort\": " << patients << ",\n"
        << "  \"cohort_seed\": " << cohort_params.seed << ",\n";
  }
  out
      << "  \"total_cycles\": " << total << ",\n"
      << "  \"prefix_cycles\": " << prefix << ",\n"
      << "  \"cold_wall_seconds\": " << cold.perf.wall_seconds << ",\n"
      << "  \"warm_wall_seconds\": " << warm.perf.wall_seconds << ",\n"
      << "  \"cold_sim_cycles\": " << cold.perf.sim_cycles << ",\n"
      << "  \"warm_sim_cycles\": " << warm.perf.sim_cycles << ",\n"
      << "  \"warmups\": " << warm.perf.warmups << ",\n"
      << "  \"warm_resumed\": " << warm.perf.warm_resumed << ",\n"
      << "  \"warmup_wall_seconds\": " << warm.perf.warmup_wall_seconds << ",\n"
      << "  \"warmup_saved_seconds\": " << warm.perf.warmup_saved_seconds << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      // Per-mode rows keyed on "mode": bench_compare.py hard-fails when a
      // baseline row goes missing from a fresh run, so neither sweep leg
      // can silently drop out of the gate.
      << "  \"runs\": [\n"
      << "    {\"mode\": \"cold\", \"wall_seconds\": " << cold.perf.wall_seconds
      << ", \"sim_cycles\": " << cold.perf.sim_cycles << "},\n"
      << "    {\"mode\": \"warm\", \"wall_seconds\": " << warm.perf.wall_seconds
      << ", \"sim_cycles\": " << warm.perf.sim_cycles << "}\n"
      << "  ],\n";
  if (shards > 0) {
    out << "  \"sharded_shards\": " << shards << ",\n"
        << "  \"sharded_workers\": " << workers << ",\n"
        << "  \"sharded_wall_seconds\": " << sharded_wall << ",\n"
        << "  \"sharded_warm_resumed\": " << sharded_warm_resumed << ",\n"
        << "  \"sharded_merge_identical\": true,\n";
  }
  out << "  \"records_identical\": true\n"
      << "}\n";
  std::printf("JSON written to %s\n", out_path.c_str());
  return 0;
}
