// Warm-start sweep harness: measures the wall-clock savings of sharing one
// simulated warm-up prefix across a fan-out of runs (RunSpec::checkpoint_at,
// sim/snapshot.h).
//
// The sweep shape is the init-heavy one every timing study produces: the
// same kernel observed at K progressively longer cycle horizons. A cold
// sweep re-simulates the common prefix K times; a warm sweep simulates it
// once, snapshots it, and resumes every horizon from the snapshot. Records
// are byte-identical either way (asserted here via the CSV round-trip), so
// the whole difference is host wall time, reported from SweepPerf.
//
// Flags:
//   --workload NAME  builtin workload (default mrpfltr)
//   --samples N      samples per channel (default 256)
//   --horizons K     fan-out width (default 8)
//   --out PATH       output JSON path (default BENCH_warm_start.json)

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/report.h"

int main(int argc, char** argv) {
  using namespace ulpsync;
  using namespace ulpsync::scenario;

  const util::CliArgs args(argc, argv);
  const std::string workload = args.get("workload", "mrpfltr");
  const unsigned horizons = static_cast<unsigned>(args.get_int("horizons", 8));
  const std::string out_path = args.get("out", "BENCH_warm_start.json");
  WorkloadParams params;
  params.samples = static_cast<unsigned>(args.get_int("samples", 256));

  EngineOptions options = engine_options_from(args);
  options.jobs = 1;  // serial: the measured saving must come from sharing,
                     // not from thread scheduling

  // Calibrate: one full run tells us the kernel's total cycle count, from
  // which the shared prefix (3/4 of the run) and the horizon fan-out are
  // derived.
  RunSpec probe;
  probe.workload = workload;
  probe.params = params;
  probe.design = DesignVariant::synchronized();
  const Engine probe_engine(Registry::builtins(), options);
  const RunRecord probe_record = probe_engine.run_one(probe);
  if (!probe_record.ok()) {
    std::fprintf(stderr, "probe run failed: %s\n",
                 probe_record.verify_error.c_str());
    return 1;
  }
  const std::uint64_t total = probe_record.cycles();
  const std::uint64_t prefix = total * 3 / 4;
  if (prefix == 0 || horizons == 0) {
    std::fprintf(stderr, "degenerate sweep (total=%llu)\n",
                 static_cast<unsigned long long>(total));
    return 1;
  }

  std::vector<RunSpec> specs;
  for (unsigned i = 0; i < horizons; ++i) {
    RunSpec spec = probe;
    spec.checkpoint_at = prefix;
    // Horizons span (prefix, total]; the last one runs to completion.
    spec.max_cycles = prefix + (total - prefix) * (i + 1) / horizons + 1;
    specs.push_back(spec);
  }

  auto sweep = [&](bool warm) {
    EngineOptions sweep_options = options;
    sweep_options.warm_start = warm;
    const Engine engine(Registry::builtins(), sweep_options);
    return engine.run_timed(specs);
  };
  const SweepResult cold = sweep(false);
  const SweepResult warm = sweep(true);

  if (to_csv(cold.records) != to_csv(warm.records)) {
    std::fprintf(stderr,
                 "warm-started records differ from cold records — "
                 "snapshot resume is broken\n");
    return 1;
  }

  const double speedup = warm.perf.wall_seconds > 0.0
                             ? cold.perf.wall_seconds / warm.perf.wall_seconds
                             : 0.0;
  std::printf("workload %s, %u samples/ch: %llu total cycles, shared prefix "
              "%llu, %u horizons\n",
              workload.c_str(), params.samples,
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(prefix), horizons);
  std::printf("cold sweep: %.3f s wall, %llu sim cycles\n",
              cold.perf.wall_seconds,
              static_cast<unsigned long long>(cold.perf.sim_cycles));
  std::printf("warm sweep: %.3f s wall, %llu sim cycles (%zu warm-up(s), "
              "%.3f s; %zu resumed; est. %.3f s saved) — records "
              "byte-identical\n",
              warm.perf.wall_seconds,
              static_cast<unsigned long long>(warm.perf.sim_cycles),
              warm.perf.warmups, warm.perf.warmup_wall_seconds,
              warm.perf.warm_resumed, warm.perf.warmup_saved_seconds);
  std::printf("speedup: %.2fx\n", speedup);

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"warm_start\",\n"
      << "  \"workload\": \"" << workload << "\",\n"
      << "  \"samples_per_channel\": " << params.samples << ",\n"
      << "  \"horizons\": " << horizons << ",\n"
      << "  \"total_cycles\": " << total << ",\n"
      << "  \"prefix_cycles\": " << prefix << ",\n"
      << "  \"cold_wall_seconds\": " << cold.perf.wall_seconds << ",\n"
      << "  \"warm_wall_seconds\": " << warm.perf.wall_seconds << ",\n"
      << "  \"cold_sim_cycles\": " << cold.perf.sim_cycles << ",\n"
      << "  \"warm_sim_cycles\": " << warm.perf.sim_cycles << ",\n"
      << "  \"warmups\": " << warm.perf.warmups << ",\n"
      << "  \"warm_resumed\": " << warm.perf.warm_resumed << ",\n"
      << "  \"warmup_wall_seconds\": " << warm.perf.warmup_wall_seconds << ",\n"
      << "  \"warmup_saved_seconds\": " << warm.perf.warmup_saved_seconds << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"records_identical\": true\n"
      << "}\n";
  std::printf("JSON written to %s\n", out_path.c_str());
  return 0;
}
