// Reproduces the Section V-B access-count claims:
//  * up to 60% fewer IM bank accesses with the synchronizer,
//  * less than 10% more DM accesses (the synchronization overhead),
//  * the synchronizer consuming < 2% of total power,
//  * ~2x clock-tree power saving at iso-workload,
//  * up to 38% dynamic power saving without voltage scaling.

#include <cstdio>
#include <string>

#include "scenario/report.h"

int main(int argc, char** argv) {
  using namespace ulpsync;
  using namespace ulpsync::scenario;
  const util::CliArgs args(argc, argv);
  WorkloadParams params;
  params.samples = static_cast<unsigned>(args.get_int("samples", 192));
  const double workload_mops = args.get_double("mops", 8.0);

  const Engine engine(Registry::builtins(), engine_options_from(args));
  const auto records = engine.run(
      Matrix().workloads({"mrpfltr", "sqrt32", "mrpdln"}).base_params(params));
  require_ok(records);

  std::printf("Section V-B access statistics at %.1f MOps/s, 1.2 V\n\n", workload_mops);
  util::Table table({"Benchmark", "IM access reduction", "DM access increase",
                     "sync / total power", "clock-tree saving",
                     "dynamic saving (no V-scaling)"});

  for (const char* workload : {"mrpfltr", "sqrt32", "mrpdln"}) {
    const auto pair = find_pair(records, workload);
    const auto& wo = *pair.baseline;
    const auto& with = *pair.synced;

    // Access counts normalized per useful op (iso-workload comparison).
    auto per_op = [](std::uint64_t count, const RunRecord& record) {
      return static_cast<double>(count) / static_cast<double>(record.useful_ops);
    };
    const double im_wo = per_op(wo.counters.im_bank_accesses, wo);
    const double im_with = per_op(with.counters.im_bank_accesses, with);
    const double dm_wo = per_op(wo.counters.dm_bank_accesses +
                                    wo.sync_stats.dm_accesses, wo);
    const double dm_with = per_op(with.counters.dm_bank_accesses +
                                      with.sync_stats.dm_accesses, with);

    const auto b_wo = breakdown_at_mops(wo, workload_mops);
    const auto b_with = breakdown_at_mops(with, workload_mops);

    table.add_row({std::string(workload),
                   util::Table::num(100.0 * (1.0 - im_with / im_wo), 1) + "%",
                   util::Table::num(100.0 * (dm_with / dm_wo - 1.0), 1) + "%",
                   util::Table::num(100.0 * b_with.synchronizer_mw /
                                        b_with.total_mw(), 2) + "%",
                   util::Table::num(b_wo.clock_tree_mw / b_with.clock_tree_mw, 2) + "x",
                   util::Table::num(100.0 * (1.0 - b_with.dynamic_mw() /
                                                       b_wo.dynamic_mw()), 1) + "%"});
  }
  std::printf("%s\n", table.to_string().c_str());
  maybe_write_csv(args, table);
  maybe_write_records(args, records);
  std::printf("Paper: up to 60%% IM reduction; < 10%% DM increase; synchronizer < 2%%\n"
              "of total power; 2x clock-tree saving; up to 38%% dynamic power saving.\n");
  return 0;
}
