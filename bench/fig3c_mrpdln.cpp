// Fig. 3c: total power vs workload for the MRPDLN benchmark.
// Paper: 55% saving at 167 MOps/s; endpoints 167 MOps/s @ 13.93 mW (w/o)
// and 336 MOps/s @ 20.09 mW (with).

#include "fig3_report.h"

int main(int argc, char** argv) {
  return ulpsync::bench::run_fig3(
      "mrpdln",
      {/*highlight_mops=*/167.0, /*paper_saving_pct=*/55.0,
       /*paper_wo_max=*/167.0, 13.93, /*paper_with_max=*/336.0, 20.09},
      argc, argv);
}
