// Reproduces the Section V-B performance claims:
//  * speed-up of up to 2.4x from resynchronization,
//  * 2.5..4.0 Ops/cycle with the synchronizer vs 1.1..2.0 without,
//  * the implied Fig. 3 maximum workloads at the 83.3 MHz nominal clock.
//
// One six-spec Matrix (3 workloads x 2 designs) through the sweep engine;
// pass --jobs N to run the specs on N host threads (identical output).

#include <cctype>
#include <cstdio>
#include <string>

#include "power/scaling.h"
#include "scenario/report.h"

namespace {

const char* const kWorkloads[3] = {"mrpfltr", "sqrt32", "mrpdln"};

std::string display_name(std::string name) {
  for (auto& c : name) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ulpsync;
  using namespace ulpsync::scenario;
  const util::CliArgs args(argc, argv);
  WorkloadParams params;
  params.samples = static_cast<unsigned>(args.get_int("samples", 256));

  // Paper values decoded from Fig. 3 endpoints (max MOps / 83.33 MHz).
  struct Paper {
    double ipc_wo, ipc_with;
  };
  const Paper paper[3] = {{1.07, 2.53}, {1.87, 3.48}, {2.00, 4.03}};

  const Engine engine(Registry::builtins(), engine_options_from(args));
  const auto records = engine.run(
      Matrix().workloads({kWorkloads[0], kWorkloads[1], kWorkloads[2]})
          .base_params(params));
  require_ok(records);

  std::printf("Section V-B reproduction: speed-up and Ops/cycle (N=%u samples/channel)\n\n",
              params.samples);
  util::Table table({"Benchmark", "ops/cycle w/o", "paper w/o", "ops/cycle with",
                     "paper with", "speedup", "paper speedup", "cycles w/o",
                     "cycles with"});

  const power::VoltageScaling scaling{power::VoltageParams{}};
  for (unsigned row = 0; row < 3; ++row) {
    const auto pair = find_pair(records, kWorkloads[row]);
    table.add_row({display_name(kWorkloads[row]),
                   util::Table::num(pair.baseline->ops_per_cycle),
                   util::Table::num(paper[row].ipc_wo),
                   util::Table::num(pair.synced->ops_per_cycle),
                   util::Table::num(paper[row].ipc_with),
                   util::Table::num(speedup(pair)) + "x",
                   util::Table::num(paper[row].ipc_with / paper[row].ipc_wo) + "x",
                   std::to_string(pair.baseline->cycles()),
                   std::to_string(pair.synced->cycles())});
  }
  std::printf("%s\n", table.to_string().c_str());
  maybe_write_csv(args, table);
  maybe_write_records(args, records);
  std::printf("Implied maximum workloads at %.1f MHz (Fig. 3 endpoints):\n",
              scaling.nominal_fmax_mhz());
  std::printf("  paper: MRPFLTR 89 -> 211, SQRT32 156 -> 290, MRPDLN 167 -> 336 MOps/s\n");
  for (const auto* workload : kWorkloads) {
    const auto pair = find_pair(records, workload);
    std::printf("  %-8s: %.0f -> %.0f MOps/s\n",
                display_name(workload).c_str(),
                pair.baseline->ops_per_cycle * scaling.nominal_fmax_mhz(),
                pair.synced->ops_per_cycle * scaling.nominal_fmax_mhz());
  }
  return 0;
}
