// Reproduces the Section V-B performance claims:
//  * speed-up of up to 2.4x from resynchronization,
//  * 2.5..4.0 Ops/cycle with the synchronizer vs 1.1..2.0 without,
//  * the implied Fig. 3 maximum workloads at the 83.3 MHz nominal clock.

#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ulpsync;
  const util::CliArgs args(argc, argv);
  kernels::BenchmarkParams params;
  params.samples = static_cast<unsigned>(args.get_int("samples", 256));

  // Paper values decoded from Fig. 3 endpoints (max MOps / 83.33 MHz).
  struct Paper {
    double ipc_wo, ipc_with;
  };
  const Paper paper[3] = {{1.07, 2.53}, {1.87, 3.48}, {2.00, 4.03}};

  std::printf("Section V-B reproduction: speed-up and Ops/cycle (N=%u samples/channel)\n\n",
              params.samples);
  util::Table table({"Benchmark", "ops/cycle w/o", "paper w/o", "ops/cycle with",
                     "paper with", "speedup", "paper speedup", "cycles w/o",
                     "cycles with"});

  const power::VoltageScaling scaling{power::VoltageParams{}};
  unsigned row = 0;
  for (auto kind : kernels::kAllBenchmarks) {
    const auto pair = bench::run_pair(kind, params);
    const double ipc_wo = pair.baseline.character.ops_per_cycle;
    const double ipc_with = pair.synchronized_.character.ops_per_cycle;
    const double speedup = static_cast<double>(pair.baseline.run.counters.cycles) /
                           static_cast<double>(pair.synchronized_.run.counters.cycles);
    table.add_row({std::string(kernels::benchmark_name(kind)),
                   util::Table::num(ipc_wo), util::Table::num(paper[row].ipc_wo),
                   util::Table::num(ipc_with), util::Table::num(paper[row].ipc_with),
                   util::Table::num(speedup) + "x",
                   util::Table::num(paper[row].ipc_with / paper[row].ipc_wo) + "x",
                   std::to_string(pair.baseline.run.counters.cycles),
                   std::to_string(pair.synchronized_.run.counters.cycles)});
    ++row;
  }
  std::printf("%s\n", table.to_string().c_str());
  bench::maybe_write_csv(args, table);
  std::printf("Implied maximum workloads at %.1f MHz (Fig. 3 endpoints):\n",
              scaling.nominal_fmax_mhz());
  std::printf("  paper: MRPFLTR 89 -> 211, SQRT32 156 -> 290, MRPDLN 167 -> 336 MOps/s\n");
  row = 0;
  for (auto kind : kernels::kAllBenchmarks) {
    const auto pair = bench::run_pair(kind, params);
    std::printf("  %-8s: %.0f -> %.0f MOps/s\n",
                std::string(kernels::benchmark_name(kind)).c_str(),
                pair.baseline.character.ops_per_cycle * scaling.nominal_fmax_mhz(),
                pair.synchronized_.character.ops_per_cycle * scaling.nominal_fmax_mhz());
    ++row;
  }
  return 0;
}
