// sweep_shard: cross-process sharded sweeps over a work spool
// (scenario/shard.h), reachable through either spool transport
// (scenario/transport.h):
//
//   --spool DIR          the on-disk spool, claims by atomic rename
//   --connect HOST:PORT  a `sweep_shard serve` coordinator on another
//                        machine; workers stream rows back over TCP
//
//   sweep_shard plan   --spool DIR [matrix flags] [--shards K] [--no-warm]
//                      [--costs a,b]
//       Expands the matrix and serializes it into shard bundles under DIR.
//       Identical-prefix groups (--checkpoint-at + --horizons) ship one
//       pre-simulated WarmState per group. --costs feeds measured per-run
//       wall times (cost files or earlier spools) into the scheduler:
//       shards are sized by predicted seconds instead of spec count and
//       numbered heaviest-first, so workers claim the long poles first.
//   sweep_shard plan   --campaign --spool DIR [campaign flags] [--shards K]
//       Plans a *fault campaign* spool instead (scenario/resilience.h).
//       work/merge/status auto-detect campaign spools from the manifest
//       header — the same commands drive both kinds over both transports.
//   sweep_shard serve  --spool DIR [--port P] [--lease S]
//       The TCP coordinator: owns DIR and leases its shards to --connect
//       workers. Claims of vanished workers (dropped connection or a
//       lease idle past S seconds) re-queue automatically, keeping their
//       partial rows. Writes the bound port to DIR/PORT; runs until
//       killed.
//   sweep_shard work   [--spool DIR | --connect H:P] [--worker-id X]
//                      [--resume] [--ring-stride N] [--ring-keep K]
//                      [--max-shards M] [--record-events DIR] [--jobs N]
//       Claims shards and executes them until the queue is empty. Run any
//       number of workers concurrently. --resume re-queues orphaned
//       claims of dead workers and reuses their finished rows.
//   sweep_shard merge  [--spool DIR | --connect H:P] --out FILE
//       Assembles the parts into one CSV, byte-identical to a
//       single-process `sweep_shard run` of the same matrix.
//   sweep_shard status [--spool DIR | --connect H:P] [--json]
//       Per-shard progress; over --connect additionally per-worker
//       throughput and an ETA. Exits 2 while the spool is incomplete.
//   sweep_shard run    --out FILE [--jobs N] [--batch] [matrix flags]
//                      [--record-events DIR]
//       The single-process reference: runs the same matrix in this
//       process and writes its CSV. CI diffs this against `merge`.
//
// Every subcommand answers --help with its flag table; unknown flags are
// one-line errors, not silent no-ops.

#include <cinttypes>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "scenario/batch.h"
#include "scenario/cli.h"
#include "scenario/record.h"
#include "scenario/report.h"
#include "scenario/resilience.h"
#include "scenario/shard.h"
#include "scenario/transport.h"
#include "util/cli.h"

namespace {

using namespace ulpsync;
using namespace ulpsync::scenario;
using cli::Flag;
using cli::FlagTable;

/// Appends `more` to `table.flags`, skipping names already present (the
/// matrix and campaign vocabularies overlap on --samples/--max-cycles/
/// --energy-mhz).
FlagTable with_flags(FlagTable table, const std::vector<Flag>& more) {
  for (const Flag& flag : more) {
    bool present = false;
    for (const Flag& existing : table.flags) {
      if (existing.name == flag.name) present = true;
    }
    if (!present) table.flags.push_back(flag);
  }
  return table;
}

std::vector<Flag> transport_flags() {
  return {
      {"spool", "DIR", "the on-disk spool directory"},
      {"connect", "HOST:PORT", "reach the spool through `sweep_shard serve`"},
  };
}

/// The transport the command drives: exactly one of --spool / --connect.
std::unique_ptr<SpoolTransport> transport_from_flags(
    const util::CliArgs& args) {
  const std::string spool = args.get("spool", "");
  const std::string connect = args.get("connect", "");
  if (!spool.empty() && !connect.empty()) {
    throw std::runtime_error(
        "pass --spool DIR or --connect HOST:PORT, not both");
  }
  if (!connect.empty()) {
    const TcpEndpoint endpoint = parse_endpoint(connect);
    return std::make_unique<TcpTransport>(endpoint.host, endpoint.port);
  }
  if (spool.empty()) {
    throw std::runtime_error(
        "missing required --spool flag (or --connect HOST:PORT)");
  }
  return std::make_unique<FsTransport>(spool);
}

/// Renders --help (returning true) when asked; otherwise rejects unknown
/// flags so a typo can never silently change a plan.
bool handle_help(const FlagTable& table, const util::CliArgs& args) {
  if (args.has("help")) {
    std::fputs(table.render().c_str(), stdout);
    return true;
  }
  table.require_known(args);
  return false;
}

int cmd_plan(const util::CliArgs& args) {
  FlagTable table{
      "sweep_shard plan",
      "expand the matrix (or a fault campaign) into a shard spool",
      {
          {"spool", "DIR", "spool directory to create (required)"},
          {"shards", "K", "shard count (default 4)"},
          {"no-warm", "", "do not ship per-group WarmStates"},
          {"costs", "a,b", "cost feedback: cost files or earlier spools"},
          {"campaign", "", "plan a fault-campaign spool instead"},
          {"require-localized", "", "campaign: --mode localize shorthand"},
      }};
  table = with_flags(std::move(table), cli::matrix_flags());
  table = with_flags(std::move(table), cli::campaign_flags());
  if (handle_help(table, args)) return 0;

  const std::string spool = cli::require_flag(args, "spool");
  if (args.has("campaign")) {
    const Registry& registry = Registry::builtins();
    const RecordedRun run = acquire_campaign_run(args, registry);
    const CampaignConfig config = campaign_config_from_flags(args);
    CampaignSpoolOptions options;
    options.shards = static_cast<unsigned>(args.get_int("shards", 4));
    const CampaignPlanResult plan =
        plan_campaign_spool(spool, run, config, registry, options);
    std::printf("planned campaign: %zu fault(s) into %u shard(s) at %s "
                "(fingerprint %016" PRIx64 ")\n",
                plan.faults, plan.shards, spool.c_str(), plan.fingerprint);
    return 0;
  }
  const std::vector<RunSpec> specs = cli::matrix_specs_from_flags(args);
  SpoolOptions options;
  options.shards = static_cast<unsigned>(args.get_int("shards", 4));
  options.ship_warm_states = !args.has("no-warm");
  options.costs = load_cost_model(cli::split_list(args.get("costs", "")));
  const PlanResult plan =
      plan_spool(spool, specs, Registry::builtins(), options);
  std::printf("planned %zu specs into %u shards at %s "
              "(%zu warm state(s) shipped, fingerprint %016" PRIx64 ")\n",
              plan.specs, plan.shards, spool.c_str(), plan.warm_states,
              plan.fingerprint);
  if (!options.costs.empty()) {
    std::printf("cost-model schedule: %zu spec identit(ies), "
                "%zu workload rate(s)\n",
                options.costs.by_spec.size(),
                options.costs.by_workload.size());
  }
  return 0;
}

int cmd_work(const util::CliArgs& args) {
  FlagTable table{
      "sweep_shard work",
      "claim and execute shards until the queue drains",
      {
          {"worker-id", "X", "recorded as the claim owner (default: pid)"},
          {"resume", "", "re-queue orphaned claims of dead workers first"},
          {"ring-stride", "N", "checkpoint-ring stride in cycles (0 = off)"},
          {"ring-keep", "K", "checkpoints kept per ring (default 4)"},
          {"max-shards", "M", "stop after M shards (0 = drain)"},
          {"record-events", "DIR", "record every run's event schedule to DIR"},
          {"jobs", "N", "campaign spools: trial threads per shard"},
      }};
  table = with_flags(std::move(table), transport_flags());
  if (handle_help(table, args)) return 0;

  const std::unique_ptr<SpoolTransport> transport = transport_from_flags(args);
  if (is_campaign_manifest(transport->manifest_text())) {
    CampaignWorkOptions options;
    options.worker_id = args.get("worker-id", "");
    options.resume = args.has("resume");
    options.jobs = cli::jobs_from_flags(args, 1);
    options.max_shards =
        static_cast<std::size_t>(args.get_int("max-shards", 0));
    const CampaignWorkReport report =
        work_campaign_transport(*transport, Registry::builtins(), options);
    std::printf("worker done: %zu shard(s), %zu trial(s) executed, "
                "%zu row(s) reused\n",
                report.shards_completed, report.trials_executed,
                report.rows_reused);
    return 0;
  }
  WorkOptions options;
  options.worker_id = args.get("worker-id", "");
  options.resume = args.has("resume");
  options.ring_stride =
      static_cast<std::uint64_t>(args.get_int("ring-stride", 0));
  options.ring_keep = static_cast<unsigned>(args.get_int("ring-keep", 4));
  options.max_shards =
      static_cast<std::size_t>(args.get_int("max-shards", 0));
  options.record_dir = args.get("record-events", "");
  const WorkReport report =
      work_spool_transport(*transport, Registry::builtins(), options);
  std::printf("worker done: %zu shard(s), %zu run(s) executed, "
              "%zu row(s) reused, %zu warm-resumed\n",
              report.shards_completed, report.runs_executed,
              report.rows_reused, report.warm_resumed);
  return 0;
}

int cmd_merge(const util::CliArgs& args) {
  FlagTable table{
      "sweep_shard merge",
      "assemble the finished parts into the sweep's CSV",
      {
          {"out", "FILE", "merged CSV destination (required)"},
      }};
  table = with_flags(std::move(table), transport_flags());
  if (handle_help(table, args)) return 0;

  const std::string out_path = cli::require_flag(args, "out");
  const std::unique_ptr<SpoolTransport> transport = transport_from_flags(args);
  const std::string csv = is_campaign_manifest(transport->manifest_text())
                              ? merge_campaign_transport(*transport)
                              : merge_spool_transport(*transport);
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out << csv;
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("merged %s -> %s\n", transport->describe().c_str(),
              out_path.c_str());
  return 0;
}

int cmd_status(const util::CliArgs& args) {
  FlagTable table{
      "sweep_shard status",
      "per-shard progress; exits 2 while the spool is incomplete",
      {
          {"json", "", "machine-readable status (one schema, both transports)"},
      }};
  table = with_flags(std::move(table), transport_flags());
  if (handle_help(table, args)) return 0;

  const std::unique_ptr<SpoolTransport> transport = transport_from_flags(args);
  const TransportStatus status = transport->status();
  if (args.has("json")) {
    std::fputs(status_json(status).c_str(), stdout);
    return status.spool.complete() ? 0 : 2;
  }
  std::printf("%s %s: %zu %s, %zu shards, fingerprint %016" PRIx64 "%s\n",
              status.campaign ? "campaign spool" : "spool",
              transport->describe().c_str(), status.spool.specs,
              status.campaign ? "faults" : "specs",
              status.spool.shards.size(), status.spool.fingerprint,
              status.spool.complete() ? " (complete)" : "");
  for (const ShardState& shard : status.spool.shards) {
    std::printf("  shard %04u: %-7s %zu spec(s), part %s",
                shard.id, shard.state.c_str(), shard.specs,
                shard.part_final
                    ? "final"
                    : (std::to_string(shard.partial_rows) + " partial row(s)")
                          .c_str());
    if (!shard.owner.empty()) std::printf(", owner %s", shard.owner.c_str());
    std::printf("\n");
  }
  std::printf("  rows done %zu/%zu, queue depth %zu\n", status.rows_done,
              status.spool.specs, status.queue_depth);
  for (const WorkerRate& worker : status.workers) {
    std::printf("  worker %s: %zu row(s), %.3f rows/s\n",
                worker.worker.c_str(), worker.rows, worker.rows_per_second);
  }
  if (status.eta_seconds >= 0.0) {
    std::printf("  eta %.1fs\n", status.eta_seconds);
  }
  return status.spool.complete() ? 0 : 2;
}

int cmd_serve(const util::CliArgs& args) {
  FlagTable table{
      "sweep_shard serve",
      "TCP coordinator: lease this spool's shards to --connect workers",
      {
          {"spool", "DIR", "the planned spool to serve (required)"},
          {"port", "P", "listen port (default 0 = ephemeral, see DIR/PORT)"},
          {"lease", "S", "seconds of silence before a claim re-queues "
                         "(default 300)"},
      }};
  if (handle_help(table, args)) return 0;

  const std::string spool = cli::require_flag(args, "spool");
  {
    FsTransport probe(spool);
    (void)probe.manifest_text();  // fail fast on an unplanned spool
  }
  SpoolServer::Options options;
  options.port = static_cast<int>(args.get_int("port", 0));
  options.lease_seconds = args.get_double("lease", 300.0);
  SpoolServer server(spool, options);
  server.start();
  {
    // Ephemeral ports are the CI-friendly default; the PORT file is how
    // sibling processes discover what was actually bound.
    std::ofstream port_file(spool + "/PORT", std::ios::trunc);
    port_file << server.port() << '\n';
  }
  std::printf("serving %s on port %d (lease %.0fs)\n", spool.c_str(),
              server.port(), options.lease_seconds);
  std::fflush(stdout);
  for (;;) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
  }
}

int cmd_run(const util::CliArgs& args) {
  FlagTable table{
      "sweep_shard run",
      "single-process reference sweep (what merge must reproduce)",
      {
          {"out", "FILE", "CSV destination (required)"},
          {"jobs", "N", "worker threads (0 = all host cores)"},
          {"batch", "", "run on the batched many-platform engine"},
          {"record-events", "DIR", "record every run's event schedule to DIR"},
      }};
  table = with_flags(std::move(table), cli::matrix_flags());
  if (handle_help(table, args)) return 0;

  const std::string out_path = cli::require_flag(args, "out");
  std::vector<RunSpec> specs = cli::matrix_specs_from_flags(args);
  const EngineOptions options = engine_options_from(args);
  const std::string record_dir = args.get("record-events", "");
  if (!record_dir.empty()) {
    // Record every run's external-event schedule to
    // <dir>/run-<index>.evt — the same layout `work --record-events`
    // produces, keyed by the spec's position in the expanded matrix.
    std::filesystem::create_directories(record_dir);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      specs[i].record_events_to =
          record_dir + "/run-" + std::to_string(i) + ".evt";
    }
  }
  std::vector<RunRecord> records;
  if (args.has("batch")) {
    // The batched many-platform engine (scenario/batch.h); records are
    // byte-identical to the scalar engine's, so `run --batch` vs `run`
    // vs `merge` CSV comparisons are exact determinism checks.
    BatchOptions batch_options;
    batch_options.jobs = options.jobs;
    batch_options.measure_lockstep = options.measure_lockstep;
    const BatchEngine engine(Registry::builtins(), batch_options);
    BatchResult result = engine.run(specs);
    std::printf("batch: %zu group(s), %zu batched run(s), %zu scalar, "
                "%zu diverged lane(s)\n",
                result.stats.groups, result.stats.batched_runs,
                result.stats.scalar_runs, result.stats.diverged_lanes);
    records = std::move(result.records);
  } else {
    const Engine engine(Registry::builtins(), options);
    records = engine.run(specs);
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out << to_csv(records);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("ran %zu spec(s) -> %s\n", records.size(), out_path.c_str());
  return 0;
}

constexpr const char* kUsage =
    "usage: sweep_shard <plan|serve|work|merge|status|run> [flags]\n"
    "run `sweep_shard <command> --help` for the command's flag table\n";

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  if (args.positional().empty()) {
    if (args.has("help")) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    std::fputs(kUsage, stderr);
    return 1;
  }
  const std::string& command = args.positional().front();
  try {
    if (command == "plan") return cmd_plan(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "work") return cmd_work(args);
    if (command == "merge") return cmd_merge(args);
    if (command == "status") return cmd_status(args);
    if (command == "run") return cmd_run(args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "sweep_shard: %s\n", error.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s' (see `sweep_shard --help`)\n",
               command.c_str());
  return 1;
}
