// sweep_shard: cross-process sharded sweeps over an on-disk work spool
// (scenario/shard.h).
//
//   sweep_shard plan  --spool DIR [matrix flags] [--shards K] [--no-warm]
//       Expands the matrix and serializes it into shard bundles under DIR.
//       Identical-prefix groups (--checkpoint-at + --horizons) ship one
//       pre-simulated WarmState per group, so workers resume instead of
//       re-simulating.
//   sweep_shard plan  --campaign --spool DIR [campaign flags] [--shards K]
//       Plans a *fault campaign* spool instead (scenario/resilience.h):
//       records a run (or loads --evt FILE), expands the campaign's fault
//       matrix, and shards it by fault-index range. Campaign flags are
//       fault_campaign's (--faults/--count/--seed/--volts/--rate-scale/
//       --mode/...). work/merge/status below auto-detect campaign spools
//       from the manifest header — the same commands drive both kinds.
//   sweep_shard work  --spool DIR [--worker-id X] [--resume]
//                     [--ring-stride N] [--ring-keep K] [--max-shards M]
//                     [--record-events DIR]
//       Claims shards (atomic rename) and executes them until the queue is
//       empty. Run any number of workers concurrently — processes or
//       machines sharing the filesystem. --resume re-queues orphaned
//       claims of dead workers, reuses their finished rows, and continues
//       interrupted runs from their checkpoint rings.
//   sweep_shard merge --spool DIR --out FILE
//       Assembles the parts into one CSV, byte-identical to a
//       single-process `sweep_shard run` of the same matrix.
//   sweep_shard status --spool DIR
//       Per-shard progress (queued/claimed/done, partial rows, owner).
//   sweep_shard run   --out FILE [--jobs N] [--batch] [matrix flags]
//                     [--record-events DIR]
//       The single-process reference: runs the same matrix in this process
//       and writes its CSV. CI diffs this against `merge`. --batch runs it
//       on the batched many-platform engine instead (scenario/batch.h) —
//       same bytes, so run/run --batch/merge comparisons are exact
//       cohort-determinism checks.
//
// --record-events DIR (work and run) records every run's external-event
// schedule to DIR/run-<global index>.evt (a recorded-run envelope,
// scenario/replay.h) for later bit-exact replay and fault injection
// (tools/fault_campaign). Recorded runs execute cold and ring-less —
// bit-identical rows either way.
//
// Matrix flags (plan and run must agree for the byte-identity guarantee):
//   --workloads a,b,c   registry names            (default mrpfltr,sqrt32)
//   --samples n1,n2     samples-per-channel axis  (default 48)
//   --designs both|synchronized|baseline          (default both)
//   --max-cycles N      cycle budget              (default 500000000)
//   --cohort N          patient-cohort axis: fan every spec out over N
//                       per-patient generator draws (ecg/cohort.h)
//   --cohort-seed S     master cohort seed        (default 2024)
//   --energy MODE       request per-record energy columns: auto (charge the
//                       spec's own design), baseline, or synchronized
//   --energy-mhz F      operating clock for the report (default: nominal
//                       fmax of the scaling model; implies --energy auto)
//   --energy-volt V     operating supply; 0 derives the minimum feasible
//                       supply for the clock (implies --energy auto)
//   --checkpoint-at N   shared warm-up prefix end (optional)
//   --horizons c1,c2    per-spec max_cycles fan-out over the checkpoint
//                       (optional; forms identical-prefix groups)

#include <cinttypes>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ecg/cohort.h"
#include "scenario/batch.h"
#include "scenario/record.h"
#include "scenario/report.h"
#include "scenario/resilience.h"
#include "scenario/shard.h"
#include "util/cli.h"

namespace {

using namespace ulpsync;
using namespace ulpsync::scenario;

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(text);
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<RunSpec> specs_from_flags(const util::CliArgs& args) {
  Matrix matrix;
  matrix.workloads(split_list(args.get("workloads", "mrpfltr,sqrt32")));
  std::vector<unsigned> samples;
  for (const std::string& value : split_list(args.get("samples", "48"))) {
    samples.push_back(static_cast<unsigned>(std::stoul(value)));
  }
  matrix.samples(samples);
  const std::string designs = args.get("designs", "both");
  if (designs == "synchronized") {
    matrix.design(DesignVariant::synchronized());
  } else if (designs == "baseline") {
    matrix.design(DesignVariant::baseline());
  } else if (designs != "both") {
    throw std::runtime_error("unknown --designs value '" + designs + "'");
  }
  matrix.max_cycles(
      static_cast<std::uint64_t>(args.get_int("max-cycles", 500'000'000)));
  if (args.has("energy") || args.has("energy-mhz") || args.has("energy-volt")) {
    EnergyRequest request;
    const std::string mode = args.get("energy", "auto");
    if (mode == "auto") {
      request.params = EnergyRequest::Params::kAuto;
    } else if (mode == "baseline") {
      request.params = EnergyRequest::Params::kBaseline;
    } else if (mode == "synchronized") {
      request.params = EnergyRequest::Params::kSynchronized;
    } else {
      throw std::runtime_error("unknown --energy value '" + mode + "'");
    }
    request.f_mhz = std::stod(args.get("energy-mhz", "0"));
    request.voltage = std::stod(args.get("energy-volt", "0"));
    matrix.energy({request});
  }
  const auto patients = static_cast<unsigned>(args.get_int("cohort", 0));
  if (patients != 0) {
    ecg::CohortParams cohort;
    cohort.seed = static_cast<std::uint64_t>(
        args.get_int("cohort-seed", static_cast<long>(cohort.seed)));
    matrix.cohort(patients, cohort);
  }

  std::vector<RunSpec> specs = matrix.expand();
  if (args.has("horizons")) {
    // Fan each spec out over the horizon budgets, sharing one warm-up
    // prefix per group — the shape `plan` ships WarmStates for.
    const auto checkpoint =
        static_cast<std::uint64_t>(args.get_int("checkpoint-at", 0));
    std::vector<RunSpec> fanned;
    for (const RunSpec& spec : specs) {
      for (const std::string& value : split_list(args.get("horizons", ""))) {
        RunSpec horizon = spec;
        horizon.max_cycles = std::stoull(value);
        if (checkpoint != 0) horizon.checkpoint_at = checkpoint;
        fanned.push_back(std::move(horizon));
      }
    }
    specs = std::move(fanned);
  } else if (args.has("checkpoint-at")) {
    const auto checkpoint =
        static_cast<std::uint64_t>(args.get_int("checkpoint-at", 0));
    for (RunSpec& spec : specs) spec.checkpoint_at = checkpoint;
  }
  return specs;
}

std::string require_flag(const util::CliArgs& args, const std::string& name) {
  const std::string value = args.get(name, "");
  if (value.empty()) {
    throw std::runtime_error("missing required --" + name + " flag");
  }
  return value;
}

int cmd_plan(const util::CliArgs& args) {
  const std::string spool = require_flag(args, "spool");
  if (args.has("campaign")) {
    const Registry& registry = Registry::builtins();
    const RecordedRun run = acquire_campaign_run(args, registry);
    const CampaignConfig config = campaign_config_from_flags(args);
    CampaignSpoolOptions options;
    options.shards = static_cast<unsigned>(args.get_int("shards", 4));
    const CampaignPlanResult plan =
        plan_campaign_spool(spool, run, config, registry, options);
    std::printf("planned campaign: %zu fault(s) into %u shard(s) at %s "
                "(fingerprint %016" PRIx64 ")\n",
                plan.faults, plan.shards, spool.c_str(), plan.fingerprint);
    return 0;
  }
  const std::vector<RunSpec> specs = specs_from_flags(args);
  SpoolOptions options;
  options.shards = static_cast<unsigned>(args.get_int("shards", 4));
  options.ship_warm_states = !args.has("no-warm");
  const PlanResult plan =
      plan_spool(spool, specs, Registry::builtins(), options);
  std::printf("planned %zu specs into %u shards at %s "
              "(%zu warm state(s) shipped, fingerprint %016" PRIx64 ")\n",
              plan.specs, plan.shards, spool.c_str(), plan.warm_states,
              plan.fingerprint);
  return 0;
}

int cmd_work(const util::CliArgs& args) {
  const std::string spool = require_flag(args, "spool");
  if (is_campaign_spool(spool)) {
    CampaignWorkOptions options;
    options.worker_id = args.get("worker-id", "");
    options.resume = args.has("resume");
    options.jobs = static_cast<unsigned>(args.get_int("jobs", 1));
    options.max_shards =
        static_cast<std::size_t>(args.get_int("max-shards", 0));
    const CampaignWorkReport report =
        work_campaign_spool(spool, Registry::builtins(), options);
    std::printf("worker done: %zu shard(s), %zu trial(s) executed, "
                "%zu row(s) reused\n",
                report.shards_completed, report.trials_executed,
                report.rows_reused);
    return 0;
  }
  WorkOptions options;
  options.worker_id = args.get("worker-id", "");
  options.resume = args.has("resume");
  options.ring_stride =
      static_cast<std::uint64_t>(args.get_int("ring-stride", 0));
  options.ring_keep = static_cast<unsigned>(args.get_int("ring-keep", 4));
  options.max_shards =
      static_cast<std::size_t>(args.get_int("max-shards", 0));
  options.record_dir = args.get("record-events", "");
  const WorkReport report =
      work_spool(spool, Registry::builtins(), options);
  std::printf("worker done: %zu shard(s), %zu run(s) executed, "
              "%zu row(s) reused, %zu warm-resumed\n",
              report.shards_completed, report.runs_executed,
              report.rows_reused, report.warm_resumed);
  return 0;
}

int cmd_merge(const util::CliArgs& args) {
  const std::string spool = require_flag(args, "spool");
  const std::string out_path = require_flag(args, "out");
  const std::string csv =
      is_campaign_spool(spool) ? merge_campaign_spool(spool)
                               : merge_spool(spool);
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out << csv;
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("merged %s -> %s\n", spool.c_str(), out_path.c_str());
  return 0;
}

int cmd_status(const util::CliArgs& args) {
  const std::string spool = require_flag(args, "spool");
  const bool campaign = is_campaign_spool(spool);
  const SpoolStatus status =
      campaign ? campaign_spool_status(spool) : spool_status(spool);
  std::printf("%s %s: %zu %s, %zu shards, fingerprint %016" PRIx64 "%s\n",
              campaign ? "campaign spool" : "spool", spool.c_str(),
              status.specs, campaign ? "faults" : "specs",
              status.shards.size(), status.fingerprint,
              status.complete() ? " (complete)" : "");
  for (const ShardState& shard : status.shards) {
    std::printf("  shard %04u: %-7s %zu spec(s), part %s",
                shard.id, shard.state.c_str(), shard.specs,
                shard.part_final
                    ? "final"
                    : (std::to_string(shard.partial_rows) + " partial row(s)")
                          .c_str());
    if (!shard.owner.empty()) std::printf(", owner %s", shard.owner.c_str());
    std::printf("\n");
  }
  return status.complete() ? 0 : 2;
}

int cmd_run(const util::CliArgs& args) {
  const std::string out_path = require_flag(args, "out");
  std::vector<RunSpec> specs = specs_from_flags(args);
  const EngineOptions options = engine_options_from(args);
  const std::string record_dir = args.get("record-events", "");
  if (!record_dir.empty()) {
    // Record every run's external-event schedule to
    // <dir>/run-<index>.evt — the same layout `work --record-events`
    // produces, keyed by the spec's position in the expanded matrix.
    std::filesystem::create_directories(record_dir);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      specs[i].record_events_to =
          record_dir + "/run-" + std::to_string(i) + ".evt";
    }
  }
  std::vector<RunRecord> records;
  if (args.has("batch")) {
    // The batched many-platform engine (scenario/batch.h); records are
    // byte-identical to the scalar engine's, so `run --batch` vs `run`
    // vs `merge` CSV comparisons are exact determinism checks.
    BatchOptions batch_options;
    batch_options.jobs = options.jobs;
    batch_options.measure_lockstep = options.measure_lockstep;
    const BatchEngine engine(Registry::builtins(), batch_options);
    BatchResult result = engine.run(specs);
    std::printf("batch: %zu group(s), %zu batched run(s), %zu scalar, "
                "%zu diverged lane(s)\n",
                result.stats.groups, result.stats.batched_runs,
                result.stats.scalar_runs, result.stats.diverged_lanes);
    records = std::move(result.records);
  } else {
    const Engine engine(Registry::builtins(), options);
    records = engine.run(specs);
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out << to_csv(records);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("ran %zu spec(s) -> %s\n", records.size(), out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: sweep_shard <plan|work|merge|status|run> ...\n");
    return 1;
  }
  const std::string& command = args.positional().front();
  try {
    if (command == "plan") return cmd_plan(args);
    if (command == "work") return cmd_work(args);
    if (command == "merge") return cmd_merge(args);
    if (command == "status") return cmd_status(args);
    if (command == "run") return cmd_run(args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "sweep_shard: %s\n", error.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 1;
}
