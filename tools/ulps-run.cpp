// ulps-run: assemble a TR16 program and run it on the simulated platform.
//
//   ulps-run program.s                          synchronized design, 8 cores
//   ulps-run program.s --design baseline        the w/o-synchronizer design
//   ulps-run program.s --cores 4 --max-cycles 1000000
//   ulps-run program.s --instrument             auto-insert sync points
//   ulps-run program.s --timeline               print the last 120 cycles
//   ulps-run program.s --dump 0x800 16          print a DM block afterwards
//
// Prints the run outcome, performance counters, and synchronizer activity.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "asm/assembler.h"
#include "core/instrument.h"
#include "core/lockstep.h"
#include "sim/platform.h"
#include "sim/trace.h"
#include "sim/vcd.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace ulpsync;
  const util::CliArgs args(argc, argv);
  if (args.positional().empty()) {
    std::fprintf(stderr, "usage: ulps-run <source.s> [options]\n");
    return 1;
  }
  std::ifstream file(args.positional().front());
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", args.positional().front().c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  auto assembled = assembler::assemble(buffer.str());
  if (!assembled.ok()) {
    std::fprintf(stderr, "%s", assembled.error_text().c_str());
    return 1;
  }
  assembler::Program program = std::move(assembled.program);
  if (args.has("instrument")) {
    auto instrumented = core::auto_instrument(program, core::InstrumentOptions{});
    if (!instrumented.ok()) {
      std::fprintf(stderr, "instrumentation failed: %s\n", instrumented.error.c_str());
      return 1;
    }
    program = std::move(instrumented.program);
  }

  const bool baseline = args.get("design", "synchronized") == "baseline";
  auto config = baseline ? sim::PlatformConfig::without_synchronizer()
                         : sim::PlatformConfig::with_synchronizer();
  config.num_cores = static_cast<unsigned>(args.get_int("cores", 8));

  sim::Platform platform(config);
  platform.load_program(program);

  sim::TimelineTracer tracer;
  core::LockstepAnalyzer analyzer;
  std::ofstream vcd_file;
  sim::VcdWriter vcd(vcd_file);
  if (args.has("vcd")) {
    vcd_file.open(args.get("vcd", "run.vcd"));
    vcd.attach(platform);
  } else if (args.has("timeline")) {
    tracer.attach(platform);
  } else {
    analyzer.attach(platform);
  }

  const auto result = platform.run(
      static_cast<std::uint64_t>(args.get_int("max-cycles", 100'000'000)));
  if (args.has("vcd")) {
    vcd.finish();
    std::printf("waveform written to %s\n", args.get("vcd", "run.vcd").c_str());
  }
  const auto& counters = platform.counters();

  std::printf("result: %s\n", result.to_string().c_str());
  std::printf("cycles: %llu   retired ops: %llu   ops/cycle: %.2f\n",
              static_cast<unsigned long long>(counters.cycles),
              static_cast<unsigned long long>(counters.retired_ops),
              counters.ops_per_cycle());
  std::printf("IM bank accesses: %llu (broadcast fraction %.0f%%)   "
              "DM accesses: %llu\n",
              static_cast<unsigned long long>(counters.im_bank_accesses),
              100.0 * counters.broadcast_fetch_fraction(),
              static_cast<unsigned long long>(counters.dm_bank_accesses));
  if (!baseline) {
    const auto& sync = platform.sync_stats();
    std::printf("synchronizer: %llu RMWs, %llu check-ins, %llu check-outs, "
                "%llu wake-ups\n",
                static_cast<unsigned long long>(sync.rmw_ops),
                static_cast<unsigned long long>(sync.checkins),
                static_cast<unsigned long long>(sync.checkouts),
                static_cast<unsigned long long>(sync.wakeup_events));
  }
  if (args.has("timeline")) {
    std::printf("\n%s", tracer.timeline().c_str());
  } else if (!args.has("vcd")) {
    std::printf("lockstep residency: %.1f%%\n",
                100.0 * analyzer.metrics().lockstep_fraction());
  }

  if (args.has("dump")) {
    const auto base = static_cast<std::uint32_t>(args.get_int("dump", 0));
    const auto count = args.positional().size() > 1
                           ? std::stoul(args.positional()[1])
                           : 16ul;
    std::printf("\nDM[0x%04x..]:", base);
    for (std::size_t i = 0; i < count; ++i)
      std::printf(" %u", platform.dm_read(base + static_cast<std::uint32_t>(i)));
    std::printf("\n");
  }
  return result.ok() ? 0 : 2;
}
