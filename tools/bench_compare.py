#!/usr/bin/env python3
"""Compare a fresh perf_throughput run against the committed baseline.

Usage:
    tools/bench_compare.py FRESH.json [BASELINE.json] [--max-regress 0.30]
                           [--allow-new-rows]

Fails (exit 1) when:
  * the headline mean — `sleep_heavy_8core_full_mean_mcycles_per_second` —
    regresses by more than the threshold (default 30%) relative to the
    baseline;
  * a baseline row is missing from the fresh run (a silently dropped
    benchmark would otherwise un-gate itself);
  * a fresh row has no baseline counterpart (an un-gated row; regenerate
    the committed baseline in the same change, or pass --allow-new-rows
    while a new benchmark is being landed deliberately).

Exits 2 on malformed inputs (missing headline key, unreadable JSON).

Every per-row delta is printed as an informational comment either way, so
CI logs double as a coarse performance history. Wall-clock benchmarks on
shared runners are noisy; the generous default threshold is meant to catch
structural regressions (an accidentally disabled fast path), not
scheduling jitter.
"""

import argparse
import json
import sys
from pathlib import Path

HEADLINE_KEY = "sleep_heavy_8core_full_mean_mcycles_per_second"


def load(path):
    with open(path) as fh:
        return json.load(fh)


def row_key(row):
    return (row["workload"], row["cores"], row["mode"])


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly generated BENCH_sim_throughput.json")
    parser.add_argument(
        "baseline",
        nargs="?",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_sim_throughput.json"),
        help="committed baseline JSON (default: repo root BENCH_sim_throughput.json)",
    )
    parser.add_argument(
        "--max-regress",
        type=float,
        default=0.30,
        help="fail when the headline mean drops by more than this fraction",
    )
    parser.add_argument(
        "--allow-new-rows",
        action="store_true",
        help="tolerate fresh rows absent from the baseline (landing a new benchmark)",
    )
    args = parser.parse_args(argv)

    try:
        fresh = load(args.fresh)
        baseline = load(args.baseline)
    except (OSError, json.JSONDecodeError) as error:
        print(f"ERROR: cannot load benchmark JSON: {error}")
        return 2

    for name, blob in (("fresh", fresh), ("baseline", baseline)):
        if HEADLINE_KEY not in blob:
            print(f"ERROR: {name} JSON has no '{HEADLINE_KEY}' key — wrong file?")
            return 2
    fresh_mean = float(fresh[HEADLINE_KEY])
    base_mean = float(baseline[HEADLINE_KEY])

    print(f"headline mean ({HEADLINE_KEY}):")
    print(f"  baseline: {base_mean:8.3f} Mcycles/s")
    ratio = fresh_mean / base_mean if base_mean > 0 else float("inf")
    print(f"  fresh:    {fresh_mean:8.3f} Mcycles/s   ({ratio:.2f}x)")

    base_rows = {row_key(r): r for r in baseline.get("runs", [])}
    fresh_keys = set()
    new_rows = []
    print("\nper-row deltas (informational):")
    for row in fresh.get("runs", []):
        k = row_key(row)
        fresh_keys.add(k)
        tag = f"{k[0]:<12} {k[1]:>2} cores {k[2]:<5}"
        if k not in base_rows:
            new_rows.append(k)
            print(f"  {tag} {row['mcycles_per_second']:8.3f} Mcyc/s   (NEW ROW, no baseline)")
            continue
        base = base_rows[k]["mcycles_per_second"]
        cur = row["mcycles_per_second"]
        delta = (cur / base - 1.0) * 100 if base > 0 else float("inf")
        print(f"  {tag} {cur:8.3f} vs {base:8.3f} Mcyc/s   ({delta:+6.1f}%)")
    missing = sorted(k for k in base_rows if k not in fresh_keys)
    for k in missing:
        print(f"  {k[0]:<12} {k[1]:>2} cores {k[2]:<5} MISSING from fresh run")

    failed = False
    if missing:
        print(
            f"\nFAIL: {len(missing)} baseline row(s) missing from the fresh run "
            f"({', '.join('/'.join(map(str, k)) for k in missing)}) — a dropped "
            "benchmark must be removed from the committed baseline explicitly"
        )
        failed = True
    if new_rows and not args.allow_new_rows:
        print(
            f"\nFAIL: {len(new_rows)} fresh row(s) have no baseline "
            f"({', '.join('/'.join(map(str, k)) for k in new_rows)}) — these rows "
            "are not regression-gated; regenerate the committed baseline, or pass "
            "--allow-new-rows while landing a new benchmark"
        )
        failed = True

    floor = base_mean * (1.0 - args.max_regress)
    if fresh_mean < floor:
        print(
            f"\nFAIL: headline mean {fresh_mean:.3f} is below the regression "
            f"floor {floor:.3f} (baseline {base_mean:.3f}, "
            f"max regression {args.max_regress:.0%})"
        )
        failed = True
    if failed:
        return 1
    print(
        f"\nOK: headline mean {fresh_mean:.3f} within {args.max_regress:.0%} "
        f"of baseline {base_mean:.3f}; all {len(fresh_keys)} rows gated"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
