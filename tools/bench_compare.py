#!/usr/bin/env python3
"""Compare fresh benchmark runs against their committed baselines.

Usage:
    tools/bench_compare.py FRESH.json [MORE.json ...] [--max-regress 0.30]
                           [--allow-new-rows]

Every benchmark JSON declares which bench it is via its `bench` field
(`sim_throughput`, `cohort_throughput`, ...); the gate dispatches the
headline key and the row schema on it, so a single invocation can gate any
mix of benches:

  * one file of a bench — a fresh run, compared against the committed
    baseline `BENCH_<bench>.json` at the repo root;
  * two files of the same bench — the first is the fresh run, the second
    the explicit baseline (the historical two-positional form
    `bench_compare.py FRESH.json BASELINE.json`).

Legacy files without a `bench` field are recognized by their headline key.

Fails (exit 1) when, for any pair:
  * the headline metric regresses by more than the threshold (default
    30%) relative to the baseline;
  * a baseline row is missing from the fresh run (a silently dropped
    benchmark would otherwise un-gate itself);
  * a fresh row has no baseline counterpart (an un-gated row; regenerate
    the committed baseline in the same change, or pass --allow-new-rows
    while a new benchmark is being landed deliberately);
  * an exact-rows bench (design_search, whose rows are deterministic
    search counts rather than wall-clock numbers) has a row value that
    differs from the baseline at all.

Exits 2 on malformed inputs (missing headline key, unreadable JSON, more
than two files of one bench).

Every per-row delta is printed as an informational comment either way, so
CI logs double as a coarse performance history. Wall-clock benchmarks on
shared runners are noisy; the generous default threshold is meant to catch
structural regressions (an accidentally disabled fast path), not
scheduling jitter.
"""

import argparse
import json
import sys
from pathlib import Path

HEADLINE_KEY = "sleep_heavy_8core_full_mean_mcycles_per_second"

# Per-bench gating schema: the headline scalar, the fields identifying a
# row of `runs`, and the row metric the informational deltas report.
# `row_key: None` marks a scalar-only bench with no per-row table.
PROFILES = {
    "sim_throughput": {
        "headline": HEADLINE_KEY,
        "unit": "Mcycles/s",
        "row_key": ("workload", "cores", "mode"),
        "row_metric": "mcycles_per_second",
    },
    "cohort_throughput": {
        "headline": "batch64_min_speedup",
        "unit": "x",
        "row_key": ("workload", "patients", "cores"),
        "row_metric": "speedup",
    },
    "warm_start": {
        "headline": "speedup",
        "unit": "x",
        "row_key": ("mode",),
        "row_metric": "wall_seconds",
        "row_unit": "s",
    },
    # The rows are deterministic search counts (points per rung and the
    # frontier size), so any drift — a pruning-schedule change shifting a
    # rung's population, the frontier growing or shrinking — is a real
    # behavioral change, not runner noise: exact_rows gates the row values
    # themselves, not just row presence, even when the wall-derived
    # headline is fine.
    "design_search": {
        "headline": "point_evals_per_second",
        "unit": "evals/s",
        "row_key": ("stage",),
        "row_metric": "points",
        "row_unit": "points",
        "exact_rows": True,
    },
    # Fault-campaign rows are exact per-(model, outcome) counts over a
    # committed recording with a fixed seed: the masked/detected/SDC split
    # is deterministic, so any drift means the error models, the replay,
    # or the outcome classifier changed behavior.
    "fault_campaign": {
        "headline": "faults_per_second",
        "unit": "faults/s",
        "row_key": ("model", "outcome"),
        "row_metric": "count",
        "row_unit": "faults",
        "exact_rows": True,
    },
}


def load(path):
    with open(path) as fh:
        return json.load(fh)


def profile_of(blob, name):
    """Resolves a file's bench profile; legacy files by headline key."""
    bench = blob.get("bench")
    if bench is None:
        for candidate in ("sim_throughput", "cohort_throughput"):
            if PROFILES[candidate]["headline"] in blob:
                return candidate, PROFILES[candidate]
        raise ValueError(
            f"{name} has neither a 'bench' field nor a recognizable headline key"
        )
    if bench not in PROFILES:
        raise ValueError(f"{name} declares unknown bench '{bench}'")
    return bench, PROFILES[bench]


def compare_pair(bench, profile, fresh, baseline, max_regress, allow_new_rows):
    """Gates one fresh/baseline pair; returns an exit code (0, 1 or 2)."""
    headline = profile["headline"]
    for name, blob in (("fresh", fresh), ("baseline", baseline)):
        if headline not in blob:
            print(f"ERROR: {name} {bench} JSON has no '{headline}' key — wrong file?")
            return 2
    fresh_mean = float(fresh[headline])
    base_mean = float(baseline[headline])

    unit = profile["unit"]
    print(f"[{bench}] headline ({headline}):")
    print(f"  baseline: {base_mean:8.3f} {unit}")
    ratio = fresh_mean / base_mean if base_mean > 0 else float("inf")
    print(f"  fresh:    {fresh_mean:8.3f} {unit}   ({ratio:.2f}x)")

    missing = []
    new_rows = []
    drifted = []
    fresh_keys = set()
    if profile["row_key"] is not None:
        fields = profile["row_key"]
        metric = profile["row_metric"]
        unit = profile.get("row_unit", unit)
        exact = profile.get("exact_rows", False)

        def row_key(row):
            return tuple(row[f] for f in fields)

        base_rows = {row_key(r): r for r in baseline.get("runs", [])}
        print("\nper-row deltas (informational):" if not exact
              else "\nper-row deltas (gated exactly):")
        for row in fresh.get("runs", []):
            k = row_key(row)
            fresh_keys.add(k)
            tag = " ".join(str(part) for part in k)
            if k not in base_rows:
                new_rows.append(k)
                print(f"  {tag:<28} {row[metric]:8.3f}   (NEW ROW, no baseline)")
                continue
            base = base_rows[k][metric]
            cur = row[metric]
            if exact and cur != base:
                drifted.append((k, cur, base))
            delta = (cur / base - 1.0) * 100 if base > 0 else float("inf")
            print(f"  {tag:<28} {cur:8.3f} vs {base:8.3f} {unit}   ({delta:+6.1f}%)")
        missing = sorted(k for k in base_rows if k not in fresh_keys)
        for k in missing:
            tag = " ".join(str(part) for part in k)
            print(f"  {tag:<28} MISSING from fresh run")

    failed = False
    if missing:
        print(
            f"\nFAIL [{bench}]: {len(missing)} baseline row(s) missing from the "
            f"fresh run ({', '.join('/'.join(map(str, k)) for k in missing)}) — "
            "a dropped benchmark must be removed from the committed baseline "
            "explicitly"
        )
        failed = True
    if new_rows and not allow_new_rows:
        print(
            f"\nFAIL [{bench}]: {len(new_rows)} fresh row(s) have no baseline "
            f"({', '.join('/'.join(map(str, k)) for k in new_rows)}) — these rows "
            "are not regression-gated; regenerate the committed baseline, or pass "
            "--allow-new-rows while landing a new benchmark"
        )
        failed = True
    if drifted:
        detail = ", ".join(
            f"{'/'.join(map(str, k))} {cur:g} vs {base:g}"
            for (k, cur, base) in drifted
        )
        print(
            f"\nFAIL [{bench}]: {len(drifted)} row(s) drifted from the baseline "
            f"({detail}) — these counts are deterministic; an intentional "
            "change must regenerate the committed baseline in the same commit"
        )
        failed = True

    floor = base_mean * (1.0 - max_regress)
    if fresh_mean < floor:
        print(
            f"\nFAIL [{bench}]: headline {fresh_mean:.3f} is below the regression "
            f"floor {floor:.3f} (baseline {base_mean:.3f}, "
            f"max regression {max_regress:.0%})"
        )
        failed = True
    if failed:
        return 1
    print(
        f"\nOK [{bench}]: headline {fresh_mean:.3f} within {max_regress:.0%} "
        f"of baseline {base_mean:.3f}; {len(fresh_keys)} row(s) gated"
    )
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "files",
        nargs="+",
        help="benchmark JSONs: fresh runs, each optionally followed (anywhere "
        "later on the command line) by an explicit baseline of the same bench; "
        "default baseline is the repo-root BENCH_<bench>.json",
    )
    parser.add_argument(
        "--max-regress",
        type=float,
        default=0.30,
        help="fail when a headline metric drops by more than this fraction",
    )
    parser.add_argument(
        "--allow-new-rows",
        action="store_true",
        help="tolerate fresh rows absent from the baseline (landing a new benchmark)",
    )
    args = parser.parse_args(argv)

    repo_root = Path(__file__).resolve().parent.parent

    # Bucket the inputs by bench, preserving order: the first file of a
    # bench is the fresh run, an optional second its explicit baseline.
    pairs = {}  # bench -> [profile, fresh, baseline-or-None]
    try:
        for path in args.files:
            blob = load(path)
            bench, profile = profile_of(blob, path)
            if bench not in pairs:
                pairs[bench] = [profile, blob, None]
            elif pairs[bench][2] is None:
                pairs[bench][2] = blob
            else:
                print(f"ERROR: more than two {bench} files given")
                return 2
    except (OSError, json.JSONDecodeError, ValueError) as error:
        print(f"ERROR: cannot load benchmark JSON: {error}")
        return 2

    worst = 0
    for index, (bench, (profile, fresh, baseline)) in enumerate(pairs.items()):
        if baseline is None:
            default = repo_root / f"BENCH_{bench}.json"
            try:
                baseline = load(default)
            except (OSError, json.JSONDecodeError) as error:
                print(f"ERROR: cannot load baseline {default}: {error}")
                return 2
        if index:
            print()
        result = compare_pair(bench, profile, fresh, baseline,
                              args.max_regress, args.allow_new_rows)
        if result == 2:
            return 2
        worst = max(worst, result)
    return worst


if __name__ == "__main__":
    sys.exit(main())
