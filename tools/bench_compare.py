#!/usr/bin/env python3
"""Compare a fresh perf_throughput run against the committed baseline.

Usage:
    tools/bench_compare.py FRESH.json [BASELINE.json] [--max-regress 0.30]

Fails (exit 1) when the headline mean —
`sleep_heavy_8core_full_mean_mcycles_per_second` — regresses by more than
the threshold (default 30%) relative to the baseline. Every per-row delta
is printed as an informational comment either way, so CI logs double as a
coarse performance history. Wall-clock benchmarks on shared runners are
noisy; the generous default threshold is meant to catch structural
regressions (an accidentally disabled fast path), not scheduling jitter.
"""

import argparse
import json
import sys
from pathlib import Path


def load(path):
    with open(path) as fh:
        return json.load(fh)


def row_key(row):
    return (row["workload"], row["cores"], row["mode"])


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly generated BENCH_sim_throughput.json")
    parser.add_argument(
        "baseline",
        nargs="?",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_sim_throughput.json"),
        help="committed baseline JSON (default: repo root BENCH_sim_throughput.json)",
    )
    parser.add_argument(
        "--max-regress",
        type=float,
        default=0.30,
        help="fail when the headline mean drops by more than this fraction",
    )
    args = parser.parse_args()

    fresh = load(args.fresh)
    baseline = load(args.baseline)

    key = "sleep_heavy_8core_full_mean_mcycles_per_second"
    fresh_mean = float(fresh[key])
    base_mean = float(baseline[key])

    print(f"headline mean ({key}):")
    print(f"  baseline: {base_mean:8.3f} Mcycles/s")
    ratio = fresh_mean / base_mean if base_mean > 0 else float("inf")
    print(f"  fresh:    {fresh_mean:8.3f} Mcycles/s   ({ratio:.2f}x)")

    base_rows = {row_key(r): r for r in baseline.get("runs", [])}
    print("\nper-row deltas (informational):")
    for row in fresh.get("runs", []):
        k = row_key(row)
        tag = f"{k[0]:<12} {k[1]:>2} cores {k[2]:<5}"
        if k not in base_rows:
            print(f"  {tag} {row['mcycles_per_second']:8.3f} Mcyc/s   (new row)")
            continue
        base = base_rows[k]["mcycles_per_second"]
        cur = row["mcycles_per_second"]
        delta = (cur / base - 1.0) * 100 if base > 0 else float("inf")
        print(f"  {tag} {cur:8.3f} vs {base:8.3f} Mcyc/s   ({delta:+6.1f}%)")
    missing = [k for k in base_rows if k not in {row_key(r) for r in fresh.get("runs", [])}]
    for k in sorted(missing):
        print(f"  {k[0]:<12} {k[1]:>2} cores {k[2]:<5} MISSING from fresh run")

    floor = base_mean * (1.0 - args.max_regress)
    if fresh_mean < floor:
        print(
            f"\nFAIL: headline mean {fresh_mean:.3f} is below the regression "
            f"floor {floor:.3f} (baseline {base_mean:.3f}, "
            f"max regression {args.max_regress:.0%})"
        )
        return 1
    print(
        f"\nOK: headline mean {fresh_mean:.3f} within {args.max_regress:.0%} "
        f"of baseline {base_mean:.3f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
