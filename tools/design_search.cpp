// design_search: energy-first Pareto-frontier search over the platform
// design space (scenario/design_search.h).
//
//   design_search --out FILE [--bench FILE] [options]
//
// Runs a successive-halving search over cores × banking × arbitration ×
// design × operating clock, writes the deterministic frontier CSV to
// --out, and prints the knee — the cheapest design point that still meets
// the throughput target (the paper's chosen 8-core synchronized design
// under the default options). The frontier bytes are identical for any
// --jobs value; CI diffs two concurrent searches to prove it.
//
// Options (defaults are the golden-fixture configuration):
//   --workload W        registry name                 (default mrpfltr)
//   --samples N         samples per channel           (default 48)
//   --designs both|synchronized|baseline              (default both)
//   --cores c1,c2       candidate core counts         (default 2,4,8)
//   --banking l1,l2     candidate im_line_slots       (default 0,16)
//   --arbitration a,b   fixed-priority|oldest-first|round-robin
//   --clocks f1,f2      operating-clock grid, MHz     (default 5,10,20,40,60,80)
//   --rungs c1,c2,...   halving horizons, cycles      (default 8000,32000,5e8)
//   --checkpoint-at N   shared warm prefix; 0 = half the first rung
//   --target-mops X     knee throughput target        (default 16)
//   --cap N             per-rung survivor cap; 0 off  (default 32)
//   --jobs N            engine threads (never changes the frontier)
//   --bench FILE        write a bench_compare JSON (bench "design_search"):
//                       headline point_evals_per_second, one gated row per
//                       rung plus the frontier-size row

#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/cli.h"
#include "scenario/design_search.h"
#include "scenario/record.h"
#include "scenario/registry.h"
#include "util/cli.h"

namespace {

using namespace ulpsync;
using namespace ulpsync::scenario;

cli::FlagTable flag_table() {
  return cli::FlagTable{
      "design_search",
      "energy-first Pareto-frontier search over the design space",
      {
          {"out", "FILE", "frontier CSV destination (required)"},
          {"bench", "FILE", "bench_compare JSON (bench \"design_search\")"},
          {"workload", "W", "registry name (default mrpfltr)"},
          {"samples", "N", "samples per channel (default 48)"},
          {"designs", "WHICH", "both|synchronized|baseline (default both)"},
          {"cores", "c1,c2", "candidate core counts (default 2,4,8)"},
          {"banking", "l1,l2", "candidate im_line_slots (default 0,16)"},
          {"arbitration", "a,b", "fixed-priority|oldest-first|round-robin"},
          {"clocks", "f1,f2", "operating-clock grid, MHz"},
          {"rungs", "c1,c2", "halving horizons, cycles"},
          {"checkpoint-at", "N", "shared warm prefix; 0 = half the first rung"},
          {"target-mops", "X", "knee throughput target (default 16)"},
          {"cap", "N", "per-rung survivor cap; 0 off (default 32)"},
          {"jobs", "N", "engine threads (never changes the frontier)"},
      }};
}

SearchOptions options_from_flags(const util::CliArgs& args) {
  SearchOptions options;
  options.workload = args.get("workload", options.workload);
  options.samples =
      static_cast<unsigned>(args.get_int("samples", options.samples));
  const std::vector<DesignVariant> designs =
      cli::designs_from_flag(args.get("designs", "both"));
  if (!designs.empty()) options.designs = designs;
  if (args.has("cores")) {
    options.cores = cli::parse_unsigned_list(args.get("cores", ""), "cores");
  }
  if (args.has("banking")) {
    options.banking =
        cli::parse_unsigned_list(args.get("banking", ""), "banking");
  }
  if (args.has("arbitration")) {
    options.arbitration.clear();
    for (const std::string& value :
         cli::split_list(args.get("arbitration", ""))) {
      options.arbitration.push_back(cli::arbitration_from_flag(value));
    }
  }
  if (args.has("clocks")) {
    options.clocks_mhz =
        cli::parse_double_list(args.get("clocks", ""), "clocks");
  }
  if (args.has("rungs")) {
    options.rungs = cli::parse_u64_list(args.get("rungs", ""), "rungs");
  }
  options.checkpoint_at = static_cast<std::uint64_t>(
      args.get_int("checkpoint-at", static_cast<long>(options.checkpoint_at)));
  options.target_mops = args.get_double("target-mops", options.target_mops);
  options.survivor_cap = static_cast<std::size_t>(
      args.get_int("cap", static_cast<long>(options.survivor_cap)));
  options.jobs = cli::jobs_from_flags(args, options.jobs);
  return options;
}

/// bench_compare JSON: the headline is wall-derived (host-speed gated),
/// the rows are deterministic search counts — one per rung plus the
/// frontier size, so a frontier-shape change trips the row gate.
std::string bench_json(const SearchOptions& options,
                       const SearchResult& result) {
  std::ostringstream out;
  const double evals_per_second =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.specs_executed) / result.wall_seconds
          : 0.0;
  out << "{\n";
  out << "  \"bench\": \"design_search\",\n";
  out << "  \"workload\": \"" << options.workload << "\",\n";
  out << "  \"candidates\": " << result.candidates << ",\n";
  out << "  \"specs_executed\": " << result.specs_executed << ",\n";
  out << "  \"frontier_size\": " << result.frontier.size() << ",\n";
  out << "  \"warm_resumed\": " << result.warm_resumed << ",\n";
  out << "  \"wall_seconds\": " << format_double(result.wall_seconds) << ",\n";
  out << "  \"point_evals_per_second\": " << format_double(evals_per_second)
      << ",\n";
  out << "  \"runs\": [\n";
  for (std::size_t r = 0; r < result.rungs.size(); ++r) {
    const RungStats& stats = result.rungs[r];
    out << "    {\"stage\": \"rung" << r << "\", \"points\": "
        << stats.points_in << ", \"survivors\": " << stats.survivors
        << ", \"horizon\": " << stats.horizon << "},\n";
  }
  out << "    {\"stage\": \"frontier\", \"points\": " << result.frontier.size()
      << ", \"survivors\": " << result.frontier.size()
      << ", \"horizon\": 0}\n";
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  if (args.has("help")) {
    std::fputs(flag_table().render().c_str(), stdout);
    return 0;
  }
  const std::string out_path = args.get("out", "");
  if (out_path.empty()) {
    std::fprintf(stderr, "usage: design_search --out FILE [options]\n");
    return 1;
  }
  try {
    flag_table().require_known(args);
    const SearchOptions options = options_from_flags(args);
    const SearchResult result =
        design_search(Registry::builtins(), options);

    if (!write_file(out_path, frontier_csv(options.workload, result))) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    const std::string bench_path = args.get("bench", "");
    if (!bench_path.empty() &&
        !write_file(bench_path, bench_json(options, result))) {
      std::fprintf(stderr, "cannot write %s\n", bench_path.c_str());
      return 1;
    }

    std::printf("design_search: %zu candidate(s), %zu run(s), "
                "%zu warm-resumed, frontier %zu point(s) -> %s\n",
                result.candidates, result.specs_executed, result.warm_resumed,
                result.frontier.size(), out_path.c_str());
    for (const RungStats& stats : result.rungs) {
      std::printf("  rung %9llu cycles: %zu -> %zu point(s)\n",
                  static_cast<unsigned long long>(stats.horizon),
                  stats.points_in, stats.survivors);
    }
    if (result.knee_index >= 0) {
      const FrontierPoint& knee =
          result.frontier[static_cast<std::size_t>(result.knee_index)];
      std::printf("  knee: %s, %u cores, %.3g MHz @ %.3g V — "
                  "%.3g MOps/s at %.3g mW (%.3g pJ/op)\n",
                  knee.candidate.design.label.c_str(), knee.candidate.cores,
                  knee.f_mhz, knee.voltage, knee.mops, knee.total_mw,
                  knee.energy_per_op_pj);
    } else {
      std::printf("  knee: no feasible point meets %.3g MOps/s\n",
                  options.target_mops);
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "design_search: %s\n", error.what());
    return 1;
  }
}
