#!/usr/bin/env python3
"""Tests for the bench_compare.py regression gate.

Run with pytest (CI) or directly (`python3 tools/test_bench_compare.py`).
The cases pin down the gating contract: pass on matching rows, fail on a
headline regression, fail hard on rows missing from either side (the
silently-un-gated-row bug), and accept new rows only under
--allow-new-rows.
"""

import copy
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import bench_compare  # noqa: E402


def make_bench(mean=5.0, rows=None):
    if rows is None:
        rows = [("mrpfltr", 8, "full", 5.0), ("sqrt32", 8, "ff", 7.0)]
    return {
        bench_compare.HEADLINE_KEY: mean,
        "runs": [
            {"workload": w, "cores": c, "mode": m, "mcycles_per_second": v}
            for (w, c, m, v) in rows
        ],
    }


def run_compare(tmp_path, fresh, baseline, *extra):
    fresh_path = tmp_path / "fresh.json"
    base_path = tmp_path / "baseline.json"
    fresh_path.write_text(json.dumps(fresh))
    base_path.write_text(json.dumps(baseline))
    return bench_compare.main([str(fresh_path), str(base_path), *extra])


def test_identical_runs_pass(tmp_path):
    bench = make_bench()
    assert run_compare(tmp_path, bench, copy.deepcopy(bench)) == 0


def test_small_regression_within_threshold_passes(tmp_path):
    assert run_compare(tmp_path, make_bench(mean=4.0), make_bench(mean=5.0)) == 0


def test_large_regression_fails(tmp_path):
    assert run_compare(tmp_path, make_bench(mean=3.0), make_bench(mean=5.0)) == 1


def test_row_missing_from_fresh_fails(tmp_path):
    fresh = make_bench(rows=[("mrpfltr", 8, "full", 5.0)])
    baseline = make_bench()
    assert run_compare(tmp_path, fresh, baseline) == 1


def test_row_missing_from_baseline_fails(tmp_path):
    # The original bug: a fresh row with no baseline counterpart sailed
    # through as "(new row)" with exit 0, leaving it un-gated forever.
    fresh = make_bench(
        rows=[("mrpfltr", 8, "full", 5.0), ("sqrt32", 8, "ff", 7.0),
              ("brandnew", 8, "full", 9.0)]
    )
    baseline = make_bench()
    assert run_compare(tmp_path, fresh, baseline) == 1


def test_new_row_allowed_with_flag(tmp_path):
    fresh = make_bench(
        rows=[("mrpfltr", 8, "full", 5.0), ("sqrt32", 8, "ff", 7.0),
              ("brandnew", 8, "full", 9.0)]
    )
    baseline = make_bench()
    assert run_compare(tmp_path, fresh, baseline, "--allow-new-rows") == 0


def test_missing_headline_key_is_a_clear_error(tmp_path):
    fresh = make_bench()
    del fresh[bench_compare.HEADLINE_KEY]
    assert run_compare(tmp_path, fresh, make_bench()) == 2


def test_unreadable_or_malformed_json_is_a_clear_error(tmp_path):
    base_path = tmp_path / "baseline.json"
    base_path.write_text(json.dumps(make_bench()))
    assert bench_compare.main([str(tmp_path / "nope.json"), str(base_path)]) == 2
    truncated = tmp_path / "truncated.json"
    truncated.write_text('{"runs": [')
    assert bench_compare.main([str(truncated), str(base_path)]) == 2


def test_committed_baseline_gates_itself():
    baseline = str(Path(__file__).resolve().parent.parent / "BENCH_sim_throughput.json")
    assert bench_compare.main([baseline, baseline]) == 0


if __name__ == "__main__":
    # Standalone runner for environments without pytest.
    import tempfile

    failures = 0
    for name, test in sorted(globals().items()):
        if not name.startswith("test_") or not callable(test):
            continue
        try:
            if test.__code__.co_argcount:
                with tempfile.TemporaryDirectory() as tmp:
                    test(Path(tmp))
            else:
                test()
            print(f"PASS {name}")
        except AssertionError:
            print(f"FAIL {name}")
            failures += 1
    sys.exit(1 if failures else 0)
