#!/usr/bin/env python3
"""Tests for the bench_compare.py regression gate.

Run with pytest (CI) or directly (`python3 tools/test_bench_compare.py`).
The cases pin down the gating contract: pass on matching rows, fail on a
headline regression, fail hard on rows missing from either side (the
silently-un-gated-row bug), and accept new rows only under
--allow-new-rows.
"""

import copy
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import bench_compare  # noqa: E402


def make_bench(mean=5.0, rows=None):
    if rows is None:
        rows = [("mrpfltr", 8, "full", 5.0), ("sqrt32", 8, "ff", 7.0)]
    return {
        bench_compare.HEADLINE_KEY: mean,
        "runs": [
            {"workload": w, "cores": c, "mode": m, "mcycles_per_second": v}
            for (w, c, m, v) in rows
        ],
    }


def make_cohort_bench(min_speedup=3.2, rows=None):
    if rows is None:
        rows = [("sleepgen", 64, 8, 3.3), ("streaming", 512, 8, 3.5)]
    return {
        "bench": "cohort_throughput",
        "batch64_min_speedup": min_speedup,
        "runs": [
            {"workload": w, "patients": p, "cores": c, "speedup": s}
            for (w, p, c, s) in rows
        ],
    }


def make_warm_bench(speedup=3.5, rows=None):
    if rows is None:
        rows = [("cold", 0.50), ("warm", 0.14)]
    return {
        "bench": "warm_start",
        "speedup": speedup,
        "runs": [
            {"mode": m, "wall_seconds": w, "sim_cycles": 1000}
            for (m, w) in rows
        ],
    }


def make_design_bench(evals_per_second=350.0, rows=None):
    if rows is None:
        rows = [("rung0", 72, 25, 8000), ("rung1", 25, 25, 32000),
                ("rung2", 25, 21, 500000000), ("frontier", 21, 21, 0)]
    return {
        "bench": "design_search",
        "workload": "mrpfltr",
        "point_evals_per_second": evals_per_second,
        "runs": [
            {"stage": st, "points": p, "survivors": sv, "horizon": h}
            for (st, p, sv, h) in rows
        ],
    }


def make_fault_bench(faults_per_second=1100.0, rows=None):
    if rows is None:
        rows = [("dm", "sdc", 2), ("im", "masked", 1),
                ("im", "undecodable-image", 1), ("wake-delay", "detected", 2),
                ("wake-drop", "sdc", 2)]
    return {
        "bench": "fault_campaign",
        "faults": sum(c for (_, _, c) in rows),
        "wall_seconds": 0.01,
        "faults_per_second": faults_per_second,
        "runs": [
            {"model": m, "outcome": o, "count": c} for (m, o, c) in rows
        ],
    }


def run_compare(tmp_path, fresh, baseline, *extra):
    fresh_path = tmp_path / "fresh.json"
    base_path = tmp_path / "baseline.json"
    fresh_path.write_text(json.dumps(fresh))
    base_path.write_text(json.dumps(baseline))
    return bench_compare.main([str(fresh_path), str(base_path), *extra])


def test_identical_runs_pass(tmp_path):
    bench = make_bench()
    assert run_compare(tmp_path, bench, copy.deepcopy(bench)) == 0


def test_small_regression_within_threshold_passes(tmp_path):
    assert run_compare(tmp_path, make_bench(mean=4.0), make_bench(mean=5.0)) == 0


def test_large_regression_fails(tmp_path):
    assert run_compare(tmp_path, make_bench(mean=3.0), make_bench(mean=5.0)) == 1


def test_row_missing_from_fresh_fails(tmp_path):
    fresh = make_bench(rows=[("mrpfltr", 8, "full", 5.0)])
    baseline = make_bench()
    assert run_compare(tmp_path, fresh, baseline) == 1


def test_row_missing_from_baseline_fails(tmp_path):
    # The original bug: a fresh row with no baseline counterpart sailed
    # through as "(new row)" with exit 0, leaving it un-gated forever.
    fresh = make_bench(
        rows=[("mrpfltr", 8, "full", 5.0), ("sqrt32", 8, "ff", 7.0),
              ("brandnew", 8, "full", 9.0)]
    )
    baseline = make_bench()
    assert run_compare(tmp_path, fresh, baseline) == 1


def test_new_row_allowed_with_flag(tmp_path):
    fresh = make_bench(
        rows=[("mrpfltr", 8, "full", 5.0), ("sqrt32", 8, "ff", 7.0),
              ("brandnew", 8, "full", 9.0)]
    )
    baseline = make_bench()
    assert run_compare(tmp_path, fresh, baseline, "--allow-new-rows") == 0


def test_missing_headline_key_is_a_clear_error(tmp_path):
    fresh = make_bench()
    del fresh[bench_compare.HEADLINE_KEY]
    assert run_compare(tmp_path, fresh, make_bench()) == 2


def test_unreadable_or_malformed_json_is_a_clear_error(tmp_path):
    base_path = tmp_path / "baseline.json"
    base_path.write_text(json.dumps(make_bench()))
    assert bench_compare.main([str(tmp_path / "nope.json"), str(base_path)]) == 2
    truncated = tmp_path / "truncated.json"
    truncated.write_text('{"runs": [')
    assert bench_compare.main([str(truncated), str(base_path)]) == 2


def test_committed_baseline_gates_itself():
    baseline = str(Path(__file__).resolve().parent.parent / "BENCH_sim_throughput.json")
    assert bench_compare.main([baseline, baseline]) == 0


def test_cohort_identical_runs_pass(tmp_path):
    bench = make_cohort_bench()
    assert run_compare(tmp_path, bench, copy.deepcopy(bench)) == 0


def test_cohort_headline_regression_fails(tmp_path):
    # batch64_min_speedup collapsing (batch engine falling back to scalar
    # everywhere) must trip the gate even when every row is still present.
    fresh = make_cohort_bench(min_speedup=1.0,
                              rows=[("sleepgen", 64, 8, 1.0),
                                    ("streaming", 512, 8, 1.1)])
    assert run_compare(tmp_path, fresh, make_cohort_bench()) == 1


def test_cohort_row_missing_from_fresh_fails(tmp_path):
    fresh = make_cohort_bench(rows=[("sleepgen", 64, 8, 3.3)])
    assert run_compare(tmp_path, fresh, make_cohort_bench()) == 1


def test_warm_identical_runs_pass(tmp_path):
    bench = make_warm_bench()
    assert run_compare(tmp_path, bench, copy.deepcopy(bench)) == 0


def test_warm_headline_regression_fails(tmp_path):
    # The warm-start speedup collapsing (snapshot resume silently falling
    # back to cold re-simulation) must trip the gate.
    fresh = make_warm_bench(speedup=1.0, rows=[("cold", 0.50), ("warm", 0.50)])
    assert run_compare(tmp_path, fresh, make_warm_bench()) == 1


def test_warm_row_missing_from_fresh_fails(tmp_path):
    # The warm_start profile must exercise the missing-row hard-fail too:
    # a fresh run that lost its warm leg is not a gated benchmark anymore.
    fresh = make_warm_bench(rows=[("cold", 0.50)])
    assert run_compare(tmp_path, fresh, make_warm_bench()) == 1


def test_warm_new_row_needs_flag(tmp_path):
    fresh = make_warm_bench(
        rows=[("cold", 0.50), ("warm", 0.14), ("sharded", 0.30)]
    )
    assert run_compare(tmp_path, fresh, make_warm_bench()) == 1
    assert run_compare(tmp_path, fresh, make_warm_bench(),
                       "--allow-new-rows") == 0


def test_design_identical_runs_pass(tmp_path):
    bench = make_design_bench()
    assert run_compare(tmp_path, bench, copy.deepcopy(bench)) == 0


def test_design_headline_regression_fails(tmp_path):
    # Search wall-clock throughput collapsing (the warm-start prefix reuse
    # silently disabled) must trip the gate like any other bench.
    fresh = make_design_bench(evals_per_second=100.0)
    assert run_compare(tmp_path, fresh, make_design_bench()) == 1


def test_design_row_missing_from_fresh_fails(tmp_path):
    # A search that lost a rung (pruning schedule shortened) is a different
    # benchmark; the missing-row hard-fail must cover the new profile too.
    fresh = make_design_bench(rows=[("rung0", 72, 25, 8000),
                                    ("rung1", 25, 25, 32000),
                                    ("frontier", 21, 21, 0)])
    assert run_compare(tmp_path, fresh, make_design_bench()) == 1


def test_design_frontier_size_drift_fails(tmp_path):
    # The rows are deterministic counts, so the frontier shrinking by even
    # one point is a real behavioral change, not noise: exact_rows gating
    # must fail although every row is still present and the headline is
    # unchanged.
    fresh = make_design_bench(rows=[("rung0", 72, 25, 8000),
                                    ("rung1", 25, 25, 32000),
                                    ("rung2", 25, 20, 500000000),
                                    ("frontier", 20, 20, 0)])
    assert run_compare(tmp_path, fresh, make_design_bench()) == 1


def test_design_rung_population_drift_fails(tmp_path):
    fresh = make_design_bench(rows=[("rung0", 70, 25, 8000),
                                    ("rung1", 25, 25, 32000),
                                    ("rung2", 25, 21, 500000000),
                                    ("frontier", 21, 21, 0)])
    assert run_compare(tmp_path, fresh, make_design_bench()) == 1


def test_fault_identical_runs_pass(tmp_path):
    bench = make_fault_bench()
    assert run_compare(tmp_path, bench, copy.deepcopy(bench)) == 0


def test_fault_headline_regression_fails(tmp_path):
    # Trial throughput collapsing (the shared clean-final snapshot or the
    # parallel trial pool disabled) must trip the gate.
    fresh = make_fault_bench(faults_per_second=100.0)
    assert run_compare(tmp_path, fresh, make_fault_bench()) == 1


def test_fault_outcome_count_drift_fails(tmp_path):
    # The per-(model, outcome) counts are deterministic over the committed
    # recording: one SDC turning masked is a classifier behavior change,
    # not runner noise — exact_rows must fail it even though every row is
    # present and the headline is unchanged.
    fresh = make_fault_bench(rows=[("dm", "sdc", 1), ("im", "masked", 1),
                                   ("im", "undecodable-image", 1),
                                   ("wake-delay", "detected", 2),
                                   ("wake-drop", "sdc", 2)])
    assert run_compare(tmp_path, fresh, make_fault_bench()) == 1


def test_fault_outcome_row_vanishing_fails(tmp_path):
    # An outcome bucket disappearing entirely (undecodable-image rows no
    # longer produced) is a missing baseline row, not a zero-count row.
    fresh = make_fault_bench(rows=[("dm", "sdc", 2), ("im", "masked", 2),
                                   ("wake-delay", "detected", 2),
                                   ("wake-drop", "sdc", 2)])
    assert run_compare(tmp_path, fresh, make_fault_bench()) == 1


def test_inexact_profiles_tolerate_row_value_drift(tmp_path):
    # Contrast case: wall-clock benches (sim_throughput) keep row deltas
    # informational — only design_search's counts are gated exactly.
    fresh = make_bench(rows=[("mrpfltr", 8, "full", 4.6), ("sqrt32", 8, "ff", 7.4)])
    assert run_compare(tmp_path, fresh, make_bench()) == 0


def test_mixed_benches_gate_in_one_invocation(tmp_path):
    # One CLI call gates sim_throughput and cohort_throughput pairs; a
    # regression in either bench fails the whole invocation.
    paths = []
    for name, blob in (
        ("sim_fresh", make_bench()),
        ("cohort_fresh", make_cohort_bench(min_speedup=1.0)),
        ("sim_base", make_bench()),
        ("cohort_base", make_cohort_bench()),
    ):
        path = tmp_path / f"{name}.json"
        path.write_text(json.dumps(blob))
        paths.append(str(path))
    assert bench_compare.main(paths) == 1
    healthy = tmp_path / "cohort_ok.json"
    healthy.write_text(json.dumps(make_cohort_bench()))
    paths[1] = str(healthy)
    assert bench_compare.main(paths) == 0


def test_unknown_bench_field_is_a_clear_error(tmp_path):
    blob = make_cohort_bench()
    blob["bench"] = "not_a_bench"
    assert run_compare(tmp_path, blob, make_cohort_bench()) == 2


def test_three_files_of_one_bench_is_a_clear_error(tmp_path):
    paths = []
    for i in range(3):
        path = tmp_path / f"b{i}.json"
        path.write_text(json.dumps(make_cohort_bench()))
        paths.append(str(path))
    assert bench_compare.main(paths) == 2


def test_committed_baselines_gate_themselves_together():
    # All committed baselines as fresh runs in one invocation; each pairs
    # with its own repo-root default baseline (itself).
    root = Path(__file__).resolve().parent.parent
    sim = str(root / "BENCH_sim_throughput.json")
    cohort = str(root / "BENCH_cohort_throughput.json")
    warm = str(root / "BENCH_warm_start.json")
    design = str(root / "BENCH_design_search.json")
    fault = str(root / "BENCH_fault_campaign.json")
    assert bench_compare.main([sim, cohort, warm, design, fault]) == 0


if __name__ == "__main__":
    # Standalone runner for environments without pytest.
    import tempfile

    failures = 0
    for name, test in sorted(globals().items()):
        if not name.startswith("test_") or not callable(test):
            continue
        try:
            if test.__code__.co_argcount:
                with tempfile.TemporaryDirectory() as tmp:
                    test(Path(tmp))
            else:
                test()
            print(f"PASS {name}")
        except AssertionError:
            print(f"FAIL {name}")
            failures += 1
    sys.exit(1 if failures else 0)
