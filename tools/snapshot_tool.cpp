// snapshot_tool: capture, inspect, diff and hash deterministic platform
// snapshots (sim/snapshot.h).
//
//   snapshot_tool capture <workload> --cycle N [--out file.snap]
//                 [--samples N] [--design synchronized|baseline] [--no-ff]
//       Runs a builtin workload to cycle N and writes the snapshot. This is
//       also how the committed golden snapshots under tests/golden/ are
//       regenerated after an intentional simulator change.
//   snapshot_tool dump <file.snap>
//       Prints a human-readable summary: config, cycle, per-core state,
//       counter totals, DM occupancy, content hash.
//   snapshot_tool diff <a.snap> <b.snap>
//       Prints the first differences between two snapshots (empty output
//       and exit 0 when identical; exit 2 when they differ).
//   snapshot_tool hash <file.snap|file.evt...>
//       Prints the 64-bit content hash of each image (snapshots and
//       recorded-run envelopes alike — `.evt` files are detected by
//       extension).
//   snapshot_tool record <workload> [--out file.evt] [--samples N]
//                 [--design synchronized|baseline|xbar] [--max-cycles N]
//       Runs a builtin workload to completion, recording its external-event
//       schedule, and writes the recorded-run envelope (scenario/replay.h).
//       This is how the committed golden schedules under tests/golden/ are
//       regenerated after an intentional simulator change.
//   snapshot_tool replay <file.evt>
//       Replays a recorded-run envelope and checks bit-identity against the
//       recording (exit 0 when faithful, 2 on divergence).

#include <cstdint>
#include <cstdio>
#include <exception>
#include <fstream>
#include <stdexcept>
#include <string>

#include "core/lockstep.h"
#include "scenario/registry.h"
#include "scenario/replay.h"
#include "sim/platform.h"
#include "sim/snapshot.h"
#include "util/cli.h"

namespace {

using namespace ulpsync;

int cmd_capture(const util::CliArgs& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr, "usage: snapshot_tool capture <workload> --cycle N\n");
    return 1;
  }
  const std::string name = args.positional()[1];
  const auto cycle = static_cast<std::uint64_t>(args.get_int("cycle", 1000));
  const std::string out = args.get("out", name + ".snap");

  const scenario::Registry& registry = scenario::Registry::builtins();
  if (!registry.contains(name)) {
    std::fprintf(stderr, "unknown workload '%s'; available:\n", name.c_str());
    for (const std::string& known : registry.names())
      std::fprintf(stderr, "  %s\n", known.c_str());
    return 1;
  }

  scenario::WorkloadParams params;
  params.samples = static_cast<unsigned>(args.get_int("samples", 48));
  const auto workload = registry.make(name, params);

  const bool baseline = args.get("design", "synchronized") == "baseline";
  sim::PlatformConfig config = workload->base_config(!baseline);
  config.features = baseline ? sim::SyncFeatures::disabled()
                             : sim::SyncFeatures::enabled();
  if (args.has("no-ff")) config.fast_forward = false;

  sim::Platform platform(config);
  platform.load_program(workload->program(!baseline));
  workload->load_inputs(platform);
  const sim::RunResult result = platform.run(cycle);

  const sim::Snapshot snapshot = platform.save_snapshot();
  sim::write_snapshot_file(out, snapshot);
  std::printf("%s: %s; snapshot at cycle %llu -> %s (hash %016llx)\n",
              name.c_str(), result.to_string().c_str(),
              static_cast<unsigned long long>(snapshot.cycle()), out.c_str(),
              static_cast<unsigned long long>(snapshot.content_hash()));
  return 0;
}

void print_summary(const std::string& path, const sim::Snapshot& snap) {
  const sim::PlatformConfig& config = snap.config;
  std::printf("%s:\n", path.c_str());
  std::printf("  format v%u, content hash %016llx\n", sim::Snapshot::kFormatVersion,
              static_cast<unsigned long long>(snap.content_hash()));
  std::printf("  platform: %u cores, IM %ux%u (line %u), DM %ux%u, "
              "sync=%d dxbar=%d ixbar=%d, arbitration %d\n",
              config.num_cores, config.im_banks, config.im_bank_slots,
              config.im_line_slots, config.dm_banks, config.dm_bank_words,
              config.features.hardware_synchronizer ? 1 : 0,
              config.features.dxbar_pc_policy ? 1 : 0,
              config.features.ixbar_partial_broadcast ? 1 : 0,
              static_cast<int>(config.arbitration));
  std::printf("  image fingerprint %016llx\n",
              static_cast<unsigned long long>(snap.im_fingerprint));
  std::printf("  cycle %llu (%llu fast-forwarded), retired %llu, rr %u\n",
              static_cast<unsigned long long>(snap.cycle()),
              static_cast<unsigned long long>(snap.fast_forwarded_cycles),
              static_cast<unsigned long long>(snap.counters.retired_ops),
              snap.rr_pointer);
  for (std::size_t i = 0; i < snap.cores.size(); ++i) {
    const sim::CoreSnapshot& core = snap.cores[i];
    std::printf("  core %zu: %-11s pc %-6u stall_age %llu bubble %u ramp %u\n",
                i, std::string(sim::to_string(core.status)).c_str(),
                core.arch.pc, static_cast<unsigned long long>(core.stall_age),
                core.bubble_cycles, core.ramp_cycles);
  }
  std::size_t dm_words = 0;
  for (const sim::DmRun& run : snap.dm_runs) dm_words += run.words.size();
  std::printf("  synchronizer: %llu RMWs, %llu wake events%s\n",
              static_cast<unsigned long long>(snap.sync.stats.rmw_ops),
              static_cast<unsigned long long>(snap.sync.stats.wakeup_events),
              snap.sync.inflight_active ? ", RMW in flight" : "");
  std::printf("  dm: %zu non-zero words in %zu runs; %zu host words\n",
              dm_words, snap.dm_runs.size(), snap.host_words.size());
}

int cmd_dump(const util::CliArgs& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr, "usage: snapshot_tool dump <file.snap>\n");
    return 1;
  }
  print_summary(args.positional()[1],
                sim::read_snapshot_file(args.positional()[1]));
  return 0;
}

int cmd_diff(const util::CliArgs& args) {
  if (args.positional().size() < 3) {
    std::fprintf(stderr, "usage: snapshot_tool diff <a.snap> <b.snap>\n");
    return 1;
  }
  const sim::Snapshot a = sim::read_snapshot_file(args.positional()[1]);
  const sim::Snapshot b = sim::read_snapshot_file(args.positional()[2]);
  if (a == b) return 0;
  std::printf("%s", sim::diff_snapshots(a, b, 64).c_str());
  return 2;
}

bool has_extension(const std::string& path, const std::string& ext) {
  return path.size() >= ext.size() &&
         path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

/// Raw-byte FNV-1a 64 of a file — how text fixtures (the design-search
/// frontier CSVs) are pinned; wire images hash their parsed content
/// instead, which validates the image on the way.
std::uint64_t raw_file_hash(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  char c;
  while (in.get(c)) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

int cmd_hash(const util::CliArgs& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr,
                 "usage: snapshot_tool hash <file.snap|file.evt|file.csv...>\n");
    return 1;
  }
  for (std::size_t i = 1; i < args.positional().size(); ++i) {
    const std::string& path = args.positional()[i];
    const std::uint64_t hash =
        has_extension(path, ".evt")
            ? scenario::read_recorded_run_file(path).content_hash()
            : has_extension(path, ".csv")
                  ? raw_file_hash(path)
                  : sim::read_snapshot_file(path).content_hash();
    std::printf("%016llx  %s\n", static_cast<unsigned long long>(hash),
                path.c_str());
  }
  return 0;
}

int cmd_record(const util::CliArgs& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr, "usage: snapshot_tool record <workload>\n");
    return 1;
  }
  const std::string name = args.positional()[1];
  const std::string out = args.get("out", name + ".evt");

  const scenario::Registry& registry = scenario::Registry::builtins();
  if (!registry.contains(name)) {
    std::fprintf(stderr, "unknown workload '%s'; available:\n", name.c_str());
    for (const std::string& known : registry.names())
      std::fprintf(stderr, "  %s\n", known.c_str());
    return 1;
  }

  scenario::RunSpec spec;
  spec.workload = name;
  spec.params.samples = static_cast<unsigned>(args.get_int("samples", 48));
  spec.max_cycles =
      static_cast<std::uint64_t>(args.get_int("max-cycles", 3'000'000));
  const std::string design = args.get("design", "auto");
  if (design == "baseline") {
    spec.design = scenario::DesignVariant::baseline();
  } else if (design == "xbar") {
    spec.design = scenario::DesignVariant::xbar_only();
  } else if (design == "synchronized") {
    spec.design = scenario::DesignVariant::synchronized();
  } else {
    // auto: the synchronizer tops out at 8 cores.
    const auto workload = registry.make(name, spec.params);
    spec.design = workload->num_cores() <= 8
                      ? scenario::DesignVariant::synchronized()
                      : scenario::DesignVariant::xbar_only();
  }

  const scenario::RecordOutcome outcome =
      scenario::record_one(spec, registry);
  scenario::write_recorded_run_file(out, outcome.recorded);
  std::printf("%s: %s; %zu event(s) -> %s (hash %016llx)\n", name.c_str(),
              outcome.record.status.c_str(),
              outcome.recorded.schedule.events.size(), out.c_str(),
              static_cast<unsigned long long>(
                  outcome.recorded.content_hash()));
  return 0;
}

int cmd_replay(const util::CliArgs& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr, "usage: snapshot_tool replay <file.evt>\n");
    return 1;
  }
  const scenario::RecordedRun run =
      scenario::read_recorded_run_file(args.positional()[1]);
  const scenario::ReplayReport report =
      scenario::replay_recorded_run(run, scenario::Registry::builtins());
  if (!report.bit_identical) {
    std::fprintf(stderr, "replay diverged: %s\n", report.error.c_str());
    return 2;
  }
  std::printf("%s: replay bit-identical (%s, %llu cycles)\n",
              run.spec.workload.c_str(), report.record.status.c_str(),
              static_cast<unsigned long long>(report.record.cycles()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: snapshot_tool <capture|dump|diff|hash|record|replay>"
                 " ...\n");
    return 1;
  }
  const std::string& command = args.positional().front();
  try {
    if (command == "capture") return cmd_capture(args);
    if (command == "dump") return cmd_dump(args);
    if (command == "diff") return cmd_diff(args);
    if (command == "hash") return cmd_hash(args);
    if (command == "record") return cmd_record(args);
    if (command == "replay") return cmd_replay(args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "snapshot_tool: %s\n", error.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 1;
}
