// ulps-asm: command-line TR16 assembler.
//
//   ulps-asm program.s                 assemble, print the listing
//   ulps-asm program.s --hex out.hex   also write the image as hex words
//   ulps-asm program.s --instrument    run the automatic sync-point pass
//                                      first and list the result
//
// Exit code 0 on success, 1 on assembly errors (printed to stderr).

#include <cstdio>
#include <fstream>
#include <sstream>

#include "asm/assembler.h"
#include "core/instrument.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace ulpsync;
  const util::CliArgs args(argc, argv);
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: ulps-asm <source.s> [--hex <out.hex>] [--instrument]\n");
    return 1;
  }

  std::ifstream file(args.positional().front());
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", args.positional().front().c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  auto result = assembler::assemble(buffer.str());
  if (!result.ok()) {
    std::fprintf(stderr, "%s", result.error_text().c_str());
    return 1;
  }
  assembler::Program program = std::move(result.program);

  if (args.has("instrument")) {
    const auto instrumented =
        core::auto_instrument(program, core::InstrumentOptions{});
    if (!instrumented.ok()) {
      std::fprintf(stderr, "instrumentation failed: %s\n",
                   instrumented.error.c_str());
      return 1;
    }
    std::printf("; auto-instrumentation inserted %zu region(s)\n",
                instrumented.regions.size());
    for (const auto& note : instrumented.skipped)
      std::printf("; skipped: %s\n", note.c_str());
    program = instrumented.program;
  }

  std::printf("%s", assembler::listing(program).c_str());
  std::printf("; %zu instructions, origin 0x%04x\n", program.size(),
              program.origin);

  if (args.has("hex")) {
    std::ofstream hex(args.get("hex", "out.hex"));
    for (std::uint32_t word : program.image) {
      char line[16];
      std::snprintf(line, sizeof line, "%08x\n", word);
      hex << line;
    }
    std::printf("; image written to %s\n", args.get("hex", "out.hex").c_str());
  }
  return 0;
}
