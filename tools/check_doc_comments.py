#!/usr/bin/env python3
"""Header doc-comment lint: undocumented public APIs fail the build.

Checks every public header under the directories listed in CHECKED_DIRS for
two classes of violation:

  1. A namespace-scope declaration (class/struct/enum definition, using
     alias, function, or inline/constexpr variable) without a preceding
     `///` Doxygen comment.
  2. A public member-function declaration inside a class/struct without a
     preceding `///` comment or a trailing `///<` comment.

Deliberately exempt, to keep the signal high: constructors/destructors,
operators, `= default`/`= delete` lines, friend declarations, forward
declarations, data members (struct fields commonly carry `///<` trailers,
which stay optional), private/protected sections, and anything inside a
function body.

This is a heuristic lexer, not a C++ parser — it is tuned to this
codebase's style (one declaration starts per line, Google-ish formatting).
If it misfires on a construct, prefer reformatting the declaration; add an
exemption here only as a last resort.

Usage: python3 tools/check_doc_comments.py [repo_root]
Exit code 0 = clean, 1 = violations (listed one per line).
"""

import re
import sys
from pathlib import Path

CHECKED_DIRS = ["src/sim", "src/scenario"]

# Lines that begin a documentable namespace-scope declaration.
TYPE_RE = re.compile(r"^(template\s*<.*>\s*)?(class|struct|enum(\s+class)?|union)\s+[A-Za-z_]\w*")
USING_RE = re.compile(r"^using\s+[A-Za-z_]\w*\s*=")
VAR_RE = re.compile(r"^(inline\s+)?constexpr\s+[\w:<>,\s]+\b[A-Za-z_]\w*\s*[={]")
FUNC_RE = re.compile(r"^(\[\[nodiscard\]\]\s*)?(template\s*<.*>\s*)?"
                     r"(static\s+|inline\s+|constexpr\s+|virtual\s+|friend\s+)*"
                     r"[\w:<>,&*\s]+?\b([A-Za-z_]\w*)\s*\(")
ACCESS_RE = re.compile(r"^(public|protected|private)\s*:")
OPERATOR_RE = re.compile(r"\boperator\b")


def is_documented(lines, i):
    """True when line i carries or follows a /// doc comment."""
    if "///<" in lines[i]:
        return True
    j = i - 1
    while j >= 0 and lines[j].strip() == "":
        j -= 1
    return j >= 0 and lines[j].strip().startswith("///")


def strip_strings(line):
    """Blanks out string/char literals so braces inside them don't count."""
    return re.sub(r'"(\\.|[^"\\])*"|\'(\\.|[^\'\\])*\'', '""', line)


def check_header(path):
    violations = []
    raw = path.read_text().splitlines()
    lines = raw

    depth = 0                 # brace depth
    namespace_depth = 0       # depth reached by namespace braces only
    class_stack = []          # (depth_at_open, class_name, access, exempt)
    continuation = False      # inside a multi-line declaration header
    paren_balance = 0

    for i, raw_line in enumerate(lines):
        line = strip_strings(raw_line)
        stripped = line.strip()
        code = stripped.split("//")[0].rstrip()

        if continuation:
            paren_balance += code.count("(") - code.count(")")
            if code.endswith((";", "{", "}")) and paren_balance <= 0:
                continuation = False
            depth += code.count("{") - code.count("}")
            continue

        if code.startswith("namespace") and code.endswith("{"):
            depth += 1
            namespace_depth += 1
            continue

        at_namespace_scope = depth == namespace_depth and not class_stack
        in_class = bool(class_stack) and depth == class_stack[-1][0] + 1

        if in_class:
            match = ACCESS_RE.match(code)
            if match:
                class_stack[-1] = (class_stack[-1][0], class_stack[-1][1],
                                   match.group(1), class_stack[-1][3])

        in_exempt_class = bool(class_stack) and class_stack[-1][3]
        documentable = None
        if code and (at_namespace_scope or in_class) and not in_exempt_class:
            if TYPE_RE.match(code) and not code.endswith(";"):
                if at_namespace_scope or (in_class and class_stack[-1][2] == "public"):
                    documentable = ("type", code)
            elif at_namespace_scope and USING_RE.match(code):
                documentable = ("alias", code)
            elif at_namespace_scope and VAR_RE.match(code):
                documentable = ("constant", code)
            elif (FUNC_RE.match(code) and not OPERATOR_RE.search(code)
                  and "= default" not in code and "= delete" not in code
                  and not code.startswith(("friend", "typedef", "#"))
                  and "~" not in code):
                func_name = FUNC_RE.match(code).group(4)
                if in_class:
                    cls = class_stack[-1]
                    ctor = func_name == cls[1]
                    if cls[2] == "public" and not ctor:
                        documentable = ("member function", code)
                elif at_namespace_scope and code.endswith((";", "{")):
                    documentable = ("function", code)

        if documentable and not is_documented(lines, i):
            kind, decl = documentable
            violations.append(f"{path}:{i + 1}: undocumented {kind}: {decl[:80]}")

        if TYPE_RE.match(code) and not code.endswith(";"):
            name_match = re.search(r"(class|struct|enum(?:\s+class)?|union)\s+([A-Za-z_]\w*)", code)
            default_access = "private" if code.startswith("class") else "public"
            # A type nested in a non-public section is an implementation
            # detail: its members are exempt.
            exempt = bool(class_stack) and (class_stack[-1][2] != "public"
                                            or class_stack[-1][3])
            if "{" in code:
                class_stack.append((depth, name_match.group(2), default_access,
                                    exempt))
        elif class_stack and code == "};" and depth == class_stack[-1][0] + 1:
            class_stack.pop()

        # Multi-line declaration header (open parens or trailing comma/op).
        paren_balance = code.count("(") - code.count(")")
        if code and not code.endswith((";", "{", "}", ":")) and \
                (paren_balance > 0 or code.endswith((",", "&&", "||", "=", "+"))):
            continuation = True

        depth += code.count("{") - code.count("}")
        if depth < namespace_depth:
            namespace_depth = depth

    return violations


def main():
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent
    all_violations = []
    checked = 0
    for directory in CHECKED_DIRS:
        for header in sorted((root / directory).glob("*.h")):
            checked += 1
            all_violations.extend(check_header(header))
    for violation in all_violations:
        print(violation)
    print(f"checked {checked} headers in {', '.join(CHECKED_DIRS)}: "
          f"{len(all_violations)} undocumented public declaration(s)")
    return 1 if all_violations else 0


if __name__ == "__main__":
    sys.exit(main())
