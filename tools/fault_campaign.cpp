// fault_campaign: sweep-scale fault injection on recorded event schedules.
//
// Records one run (or loads a recorded-run envelope), generates a
// deterministic set of parameterized faults, injects each into a replayed
// copy of the run, and localizes the fault's first architectural effect by
// checkpoint-stride bisection (sim::find_first_divergence_replayed): a
// clean and a faulted replay advance in lockstep, snapshots are compared
// every --stride cycles, and on mismatch the last equal pair is restored
// and single-stepped to the exact first divergent cycle.
//
//   fault_campaign --out FILE [--workload NAME] [--samples N]
//                  [--design auto|synchronized|baseline|xbar]
//                  [--max-cycles N] [--evt FILE]
//                  [--faults dm,im,wake-delay,wake-drop] [--count N]
//                  [--seed S] [--stride N] [--jobs N]
//                  [--require-localized N]
//
// Fault classes (--faults, comma list; --count per class):
//   dm          flip one data-memory bit. Target words are sampled from
//               the run's recorded DM deposits and flipped at the
//               deposit's own delivery cycle, so the corruption lands in
//               memory the workload is about to read.
//   im          flip one bit of one encoded instruction word before the
//               image is loaded (an undecodable word is its own outcome).
//   wake-delay  deliver one recorded wake-up interrupt N cycles late.
//   wake-drop   never deliver one recorded wake-up interrupt.
//
// The bisection compares core-visible state (DivergenceScope::kCoreState):
// a DM flip localizes to the first cycle a core consumes the corrupted
// word, not to the injection itself.
//
// Per-fault CSV columns:
//   fault,cycle,addr,bit,core,delay,event_index,outcome,
//   divergence_cycle,divergence_core,state_class,detail
// Outcomes: localized (bisection found the first divergent cycle), masked
// (the fault never reached core state before the run's recorded end),
// undecodable-image (an im flip produced an unloadable word), no-target
// (the schedule has no event of the fault's kind), error.
//
// --require-localized N exits nonzero unless at least N faults localized —
// the CI smoke gate.

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "asm/assembler.h"
#include "scenario/registry.h"
#include "scenario/replay.h"
#include "sim/event_schedule.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

using namespace ulpsync;
using namespace ulpsync::scenario;

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(text);
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

const char* fault_name(sim::FaultAction::Kind kind, bool drop) {
  switch (kind) {
    case sim::FaultAction::Kind::kDmFlip: return "dm";
    case sim::FaultAction::Kind::kDelayWake: return "wake-delay";
    case sim::FaultAction::Kind::kDropWake: return drop ? "wake-drop" : "?";
  }
  return "?";
}

/// One campaign entry: either a replay-time FaultAction or an image flip
/// (applied before load, so it has no FaultAction representation).
struct CampaignFault {
  bool is_im_flip = false;
  sim::FaultAction action;       ///< valid when !is_im_flip
  std::size_t im_word = 0;       ///< is_im_flip: index into Program::image
  unsigned im_bit = 0;           ///< is_im_flip: bit 0..31
  bool no_target = false;        ///< class had no event to target
};

struct FaultRow {
  CampaignFault fault;
  std::string outcome;
  std::uint64_t divergence_cycle = 0;
  int divergence_core = -1;
  std::string state_class;
  std::string detail;
};

/// Classifies which architectural state class diverged first, from the
/// snapshot pair at the first divergent cycle.
void classify(const sim::Snapshot& clean, const sim::Snapshot& faulty,
              FaultRow& row) {
  for (std::size_t i = 0;
       i < clean.cores.size() && i < faulty.cores.size(); ++i) {
    const sim::CoreSnapshot& a = clean.cores[i];
    const sim::CoreSnapshot& b = faulty.cores[i];
    if (a == b) continue;
    row.divergence_core = static_cast<int>(i);
    if (a.status != b.status) {
      row.state_class = "core-status";
    } else if (a.arch.pc != b.arch.pc) {
      row.state_class = "control-flow";
    } else if (a.arch.regs != b.arch.regs) {
      row.state_class = "dataflow";
    } else {
      row.state_class = "microstate";
    }
    return;
  }
  if (!(clean.counters == faulty.counters)) {
    row.state_class = "counters";
  } else if (!(clean.sync == faulty.sync)) {
    row.state_class = "sync";
  } else if (clean.policy_groups != faulty.policy_groups) {
    row.state_class = "xbar-policy";
  } else {
    row.state_class = "other";
  }
}

std::string csv_safe(std::string text) {
  const std::size_t line_end = text.find('\n');
  if (line_end != std::string::npos) text.resize(line_end);
  for (char& c : text) {
    if (c == ',') c = ';';
  }
  return text;
}

std::string row_to_csv(const FaultRow& row) {
  std::ostringstream out;
  const CampaignFault& f = row.fault;
  if (f.is_im_flip) {
    out << "im," << 0 << ',' << f.im_word << ',' << f.im_bit << ",-1,0,0,";
  } else {
    const sim::FaultAction& a = f.action;
    out << fault_name(a.kind, true) << ',' << a.cycle << ',' << a.addr << ','
        << a.bit << ',' << a.core << ',' << a.delay << ',' << a.event_index
        << ',';
  }
  out << row.outcome << ',' << row.divergence_cycle << ','
      << row.divergence_core << ',' << row.state_class << ','
      << csv_safe(row.detail);
  return out.str();
}

/// Deterministically generates the campaign's fault list from the recorded
/// schedule: DM flip addresses come from the recorded deposits, wake
/// faults target recorded interrupt events, IM flips index the program
/// image. The same seed and schedule always produce the same faults.
std::vector<CampaignFault> generate_faults(
    const sim::EventSchedule& schedule, const assembler::Program& program,
    const std::vector<std::string>& classes, unsigned count,
    std::uint64_t seed, unsigned num_cores) {
  // Sampling pools from the schedule.
  std::vector<std::size_t> deposits;
  std::vector<std::size_t> wake_events;
  for (std::size_t i = 0; i < schedule.events.size(); ++i) {
    switch (schedule.events[i].kind) {
      case sim::EventKind::kDmWrite:
      case sim::EventKind::kDmWriteBlock:
        deposits.push_back(i);
        break;
      case sim::EventKind::kInterrupt:
      case sim::EventKind::kInterruptAll:
        wake_events.push_back(i);
        break;
    }
  }

  util::Rng rng(seed);
  std::vector<CampaignFault> faults;
  for (const std::string& cls : classes) {
    for (unsigned n = 0; n < count; ++n) {
      CampaignFault fault;
      if (cls == "dm") {
        if (deposits.empty()) {
          fault.no_target = true;
        } else {
          // Flip a bit of one recorded deposit at the deposit's own
          // delivery cycle — the flip lands right after the write, before
          // the workload consumes the word, so it has a real chance to
          // propagate instead of corrupting already-dead data.
          const sim::ExternalEvent& deposit =
              schedule.events[deposits[rng.next_below(deposits.size())]];
          fault.action.kind = sim::FaultAction::Kind::kDmFlip;
          fault.action.addr =
              deposit.kind == sim::EventKind::kDmWriteBlock
                  ? deposit.addr + static_cast<std::uint32_t>(
                                       rng.next_below(deposit.words.size()))
                  : deposit.addr;
          fault.action.bit = static_cast<unsigned>(rng.next_below(16));
          fault.action.cycle = deposit.cycle;
        }
      } else if (cls == "im") {
        fault.is_im_flip = true;
        if (program.image.empty()) {
          fault.no_target = true;
        } else {
          fault.im_word =
              static_cast<std::size_t>(rng.next_below(program.image.size()));
          fault.im_bit = static_cast<unsigned>(rng.next_below(32));
        }
      } else if (cls == "wake-delay" || cls == "wake-drop") {
        if (wake_events.empty()) {
          fault.no_target = true;
        } else {
          const std::size_t index =
              wake_events[rng.next_below(wake_events.size())];
          const sim::ExternalEvent& event = schedule.events[index];
          fault.action.kind = cls == "wake-delay"
                                  ? sim::FaultAction::Kind::kDelayWake
                                  : sim::FaultAction::Kind::kDropWake;
          fault.action.event_index = index;
          fault.action.core =
              event.kind == sim::EventKind::kInterrupt
                  ? static_cast<unsigned>(event.core)
                  : static_cast<unsigned>(
                        rng.next_below(std::max(1u, num_cores)));
          if (cls == "wake-delay")
            fault.action.delay = 1 + rng.next_below(256);
        }
      } else {
        throw std::runtime_error("unknown fault class: " + cls);
      }
      if (fault.no_target) {
        // Keep the row (outcome "no-target") so the report shape is
        // independent of the schedule's event mix.
        fault.is_im_flip = cls == "im";
        if (cls == "wake-drop") {
          fault.action.kind = sim::FaultAction::Kind::kDropWake;
        } else if (cls == "wake-delay") {
          fault.action.kind = sim::FaultAction::Kind::kDelayWake;
        }
      }
      faults.push_back(fault);
    }
  }
  return faults;
}

/// Replays the recorded run twice — clean and with `fault` injected — and
/// bisects to the first architectural divergence.
FaultRow run_fault(const RecordedRun& run, const Registry& registry,
                   const CampaignFault& fault, std::uint64_t stride) {
  FaultRow row;
  row.fault = fault;
  if (fault.no_target) {
    row.outcome = "no-target";
    return row;
  }
  try {
    ReplayRig clean = make_replay_rig(run, registry);
    ReplayRig faulty;
    if (fault.is_im_flip) {
      faulty.workload = registry.make(run.spec.workload, run.spec.params);
      faulty.platform = std::make_unique<sim::Platform>(
          resolved_config(run.spec, *faulty.workload));
      assembler::Program corrupted =
          faulty.workload->program(run.spec.with_synchronizer());
      corrupted.image[fault.im_word] ^= std::uint32_t{1} << fault.im_bit;
      try {
        faulty.platform->load_image(corrupted.origin, corrupted.image);
      } catch (const std::invalid_argument& error) {
        row.outcome = "undecodable-image";
        row.detail = error.what();
        return row;
      }
    } else {
      faulty = make_replay_rig(run, registry);
    }

    std::vector<sim::FaultAction> actions;
    if (!fault.is_im_flip) actions.push_back(fault.action);
    sim::ReplayCursor clean_cursor(*clean.platform, run.schedule, {});
    sim::ReplayCursor faulty_cursor(*faulty.platform, run.schedule, actions);
    const sim::ReplayDivergence divergence = sim::find_first_divergence_replayed(
        clean_cursor, faulty_cursor, run.schedule.final_result.cycles,
        sim::DivergenceScope::kCoreState, stride);
    if (!divergence.diverged) {
      row.outcome = "masked";
      return row;
    }
    row.outcome = "localized";
    row.divergence_cycle = divergence.first_divergent_cycle;
    classify(divergence.clean_state, divergence.faulty_state, row);
    row.detail = divergence.delta;
  } catch (const std::exception& error) {
    row.outcome = "error";
    row.detail = error.what();
  }
  return row;
}

int run_campaign(const util::CliArgs& args) {
  const std::string out_path = args.get("out", "");
  if (out_path.empty()) throw std::runtime_error("missing required --out flag");

  const Registry& registry = Registry::builtins();
  RecordedRun run;
  const std::string evt_path = args.get("evt", "");
  if (!evt_path.empty()) {
    run = read_recorded_run_file(evt_path);
  } else {
    RunSpec spec;
    spec.workload = args.get("workload", "sleepgen");
    spec.params.samples = static_cast<unsigned>(args.get_int("samples", 48));
    spec.max_cycles =
        static_cast<std::uint64_t>(args.get_int("max-cycles", 2'000'000));
    const std::string design = args.get("design", "auto");
    if (design == "synchronized") {
      spec.design = DesignVariant::synchronized();
    } else if (design == "baseline") {
      spec.design = DesignVariant::baseline();
    } else if (design == "xbar") {
      spec.design = DesignVariant::xbar_only();
    } else if (design == "auto") {
      // The hardware synchronizer tops out at 8 cores; wider workloads get
      // the crossbar-enhanced design.
      const auto workload = registry.make(spec.workload, spec.params);
      spec.design = workload->num_cores() <= 8 ? DesignVariant::synchronized()
                                               : DesignVariant::xbar_only();
    } else {
      throw std::runtime_error("unknown --design: " + design);
    }
    RecordOutcome outcome = record_one(spec, registry);
    if (outcome.record.status != "all-halted" &&
        outcome.record.status != "all-asleep" &&
        outcome.record.status != "max-cycles") {
      throw std::runtime_error("recording run failed: " +
                               outcome.record.status + " (" +
                               outcome.record.verify_error + ")");
    }
    run = std::move(outcome.recorded);
  }

  const auto workload = registry.make(run.spec.workload, run.spec.params);
  const assembler::Program& program =
      workload->program(run.spec.with_synchronizer());

  const std::vector<std::string> classes =
      split_list(args.get("faults", "dm,im,wake-delay,wake-drop"));
  const auto count = static_cast<unsigned>(args.get_int("count", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2024));
  const auto stride =
      static_cast<std::uint64_t>(args.get_int("stride", 4096));
  const std::vector<CampaignFault> faults = generate_faults(
      run.schedule, program, classes, count, seed, workload->num_cores());

  // Run the campaign over a worker pool; rows land at their fault's index,
  // so the report is deterministic for any --jobs.
  std::vector<FaultRow> rows(faults.size());
  unsigned jobs = static_cast<unsigned>(args.get_int("jobs", 0));
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  jobs = static_cast<unsigned>(
      std::min<std::size_t>(jobs, std::max<std::size_t>(faults.size(), 1)));
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t index = next.fetch_add(1);
      if (index >= faults.size()) return;
      rows[index] = run_fault(run, registry, faults[index], stride);
    }
  };
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }

  std::ostringstream csv;
  csv << "fault,cycle,addr,bit,core,delay,event_index,outcome,"
         "divergence_cycle,divergence_core,state_class,detail\n";
  std::size_t localized = 0;
  for (const FaultRow& row : rows) {
    csv << row_to_csv(row) << '\n';
    if (row.outcome == "localized") ++localized;
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out << csv.str();
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  std::printf("campaign: %zu fault(s), %zu localized -> %s\n", rows.size(),
              localized, out_path.c_str());
  const auto required =
      static_cast<std::size_t>(args.get_int("require-localized", 0));
  if (localized < required) {
    std::fprintf(stderr,
                 "fault_campaign: only %zu of the required %zu fault(s) "
                 "localized\n",
                 localized, required);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  try {
    return run_campaign(args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fault_campaign: %s\n", error.what());
    return 1;
  }
}
