// fault_campaign: resilience studies on recorded event schedules.
//
// Records one run (or loads a recorded-run envelope), expands a
// deterministic fault campaign (scenario/resilience.h), injects every
// fault into a replayed copy of the run, classifies the outcomes, and
// writes the campaign CSV plus an optional aggregated resilience report.
//
//   fault_campaign --out FILE [--report FILE] [--bench FILE]
//                  [--workload NAME] [--samples N]
//                  [--design auto|synchronized|baseline|xbar]
//                  [--max-cycles N] [--evt FILE]
//                  [--faults dm,dm-multi,dm-burst,dm-row,im,
//                            wake-delay,wake-drop,rate]
//                  [--count N] [--seed S] [--jobs N]
//                  [--mode outcome|localize] [--stride N]
//                  [--volts 0.5,0.7,1.0] [--energy-mhz F]
//                  [--rate-scale X] [--retention-v V]
//                  [--rate-p-nominal P] [--rate-sensitivity S]
//                  [--multi-bits N] [--burst-words N] [--row-words N]
//                  [--require-localized N] [--require-classified N]
//
// Error models (--faults, comma list; --count per class except `rate`):
//   dm          flip one bit of one recorded DM deposit word
//   dm-multi    flip --multi-bits adjacent bits of one word
//   dm-burst    flip the same bit across --burst-words adjacent words
//   dm-row      flip one bit across a whole --row-words-aligned row
//   im          flip one bit of one encoded instruction word before load
//   wake-delay  deliver one recorded wake-up interrupt late
//   wake-drop   never deliver one recorded wake-up interrupt
//   rate        voltage-tied per-bit upsets over every recorded deposit:
//               the per-bit probability comes from power::RetentionModel
//               at the campaign point's voltage (--volts, or the supply
//               that sustains --energy-mhz per power::VoltageScaling),
//               scaled by --rate-scale. Lower voltage => strictly no
//               fewer injected faults (monotone coupling).
//
// Modes (--mode):
//   outcome   (default) classify each fault masked / detected / sdc
//             against the clean replay's final state — one replay per
//             trial; what the resilience report aggregates.
//   localize  legacy checkpoint-stride bisection to the first divergent
//             cycle (outcomes localized / masked). Implied by
//             --require-localized when --mode is not given.
//
// Gates: --require-localized N exits nonzero unless at least N faults
// localized; --require-classified N likewise for rows whose outcome is
// masked/detected/sdc/localized/undecodable-image — the CI smoke gates.

#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/cli.h"
#include "scenario/registry.h"
#include "scenario/resilience.h"
#include "util/cli.h"

namespace {

using namespace ulpsync;
using namespace ulpsync::scenario;

cli::FlagTable flag_table() {
  cli::FlagTable table{
      "fault_campaign",
      "inject a deterministic fault campaign into a recorded run",
      {
          {"out", "FILE", "campaign CSV destination (required)"},
          {"report", "FILE", "aggregated resilience report CSV"},
          {"bench", "FILE", "benchmark JSON (faults/sec + outcome counts)"},
          {"jobs", "N", "trial threads (default 0 = all host cores)"},
          {"require-localized", "N", "exit nonzero unless >= N localized"},
          {"require-classified", "N", "exit nonzero unless >= N classified"},
      }};
  for (const cli::Flag& flag : cli::campaign_flags()) {
    table.flags.push_back(flag);
  }
  return table;
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  if (!out) throw std::runtime_error("cannot write " + path);
}

/// Benchmark JSON: headline faults/sec plus exact per-(model, outcome)
/// counts — the deterministic rows the bench_compare `fault_campaign`
/// profile gates exactly.
std::string bench_json(const std::vector<FaultTrialRow>& rows,
                       double wall_seconds) {
  std::map<std::pair<std::string, std::string>, std::size_t> counts;
  for (const FaultTrialRow& row : rows) {
    counts[{error_model_name(row.fault.model), row.outcome}] += 1;
  }
  const double rate =
      wall_seconds > 0.0 ? static_cast<double>(rows.size()) / wall_seconds
                         : 0.0;
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"fault_campaign\",\n";
  out << "  \"faults\": " << rows.size() << ",\n";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", wall_seconds);
  out << "  \"wall_seconds\": " << buffer << ",\n";
  std::snprintf(buffer, sizeof(buffer), "%.3f", rate);
  out << "  \"faults_per_second\": " << buffer << ",\n";
  out << "  \"runs\": [\n";
  bool first = true;
  for (const auto& [key, count] : counts) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\"model\": \"" << key.first << "\", \"outcome\": \""
        << key.second << "\", \"count\": " << count << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

int run_tool(const util::CliArgs& args) {
  const cli::FlagTable table = flag_table();
  if (args.has("help")) {
    std::fputs(table.render().c_str(), stdout);
    return 0;
  }
  table.require_known(args);
  const std::string out_path = cli::require_flag(args, "out");

  const Registry& registry = Registry::builtins();
  const RecordedRun run = acquire_campaign_run(args, registry);
  const CampaignConfig config = campaign_config_from_flags(args);
  const unsigned jobs = cli::jobs_from_flags(args, 0);

  const auto start = std::chrono::steady_clock::now();
  const std::vector<FaultTrialRow> rows =
      run_campaign(run, registry, config, jobs);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  write_text_file(out_path, campaign_csv(rows));

  const ResilienceReport report = aggregate_resilience(rows);
  const std::string report_path = args.get("report", "");
  if (!report_path.empty()) write_text_file(report_path, report.to_csv());
  const std::string bench_path = args.get("bench", "");
  if (!bench_path.empty()) {
    write_text_file(bench_path, bench_json(rows, wall_seconds));
  }

  std::size_t localized = 0;
  std::size_t classified = 0;
  std::size_t masked = 0;
  std::size_t detected = 0;
  std::size_t sdc = 0;
  for (const FaultTrialRow& row : rows) {
    if (row.outcome == "localized") ++localized;
    if (row.outcome == "masked") ++masked;
    if (row.outcome == "detected") ++detected;
    if (row.outcome == "sdc") ++sdc;
    if (row.outcome == "masked" || row.outcome == "detected" ||
        row.outcome == "sdc" || row.outcome == "localized" ||
        row.outcome == "undecodable-image") {
      ++classified;
    }
  }
  std::printf(
      "campaign: %zu fault(s), %zu masked, %zu detected, %zu sdc, "
      "%zu localized -> %s\n",
      rows.size(), masked, detected, sdc, localized, out_path.c_str());

  const auto required_localized =
      static_cast<std::size_t>(args.get_int("require-localized", 0));
  if (localized < required_localized) {
    std::fprintf(stderr,
                 "fault_campaign: only %zu of the required %zu fault(s) "
                 "localized\n",
                 localized, required_localized);
    return 1;
  }
  const auto required_classified =
      static_cast<std::size_t>(args.get_int("require-classified", 0));
  if (classified < required_classified) {
    std::fprintf(stderr,
                 "fault_campaign: only %zu of the required %zu fault(s) "
                 "classified\n",
                 classified, required_classified);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  try {
    return run_tool(args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fault_campaign: %s\n", error.what());
    return 1;
  }
}
